package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"filecule/internal/cache"
	"filecule/internal/core"
	"filecule/internal/trace"
)

// SweepSchema versions the sweep result JSON (and the sweep section of the
// benchmark baseline that embeds it).
const SweepSchema = "filecule-sweep/v1"

// Grid vocabularies accepted by SweepConfig.
var (
	SweepPolicies      = []string{"lru", "arc", "gds", "opt"}
	SweepGranularities = []string{"file", "filecule", "bundle"}
)

// SweepConfig selects the grid and tunes the engine. Zero values mean "the
// full paper grid with engine defaults".
type SweepConfig struct {
	// Policies and Granularities select grid axes, in output order.
	// Defaults: all of SweepPolicies, all of SweepGranularities.
	Policies      []string
	Granularities []string
	// CapacitiesTB are nominal full-scale cache sizes; each is scaled by
	// Scale and clamped to at least 1 MiB, exactly like the Figure 10
	// experiment. Default: experiments.Fig10CacheSizesTB values.
	CapacitiesTB []float64
	// Scale is the trace subsampling factor the capacities are scaled by.
	// Default 1.
	Scale float64
	// Workers is the number of simulation goroutines the cells are
	// sharded over. Default GOMAXPROCS. Results are identical for any
	// worker count.
	Workers int
	// BatchSize is the number of requests resolved per pooled batch.
	// Default 4096.
	BatchSize int
	// Warmup excludes the first Warmup requests from the metrics.
	Warmup int64
}

var defaultCapacitiesTB = []float64{1, 2, 5, 10, 20, 50, 100}

func (c *SweepConfig) withDefaults() SweepConfig {
	out := *c
	if len(out.Policies) == 0 {
		out.Policies = SweepPolicies
	}
	if len(out.Granularities) == 0 {
		out.Granularities = SweepGranularities
	}
	if len(out.CapacitiesTB) == 0 {
		out.CapacitiesTB = defaultCapacitiesTB
	}
	if out.Scale == 0 {
		out.Scale = 1
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 4096
	}
	return out
}

func (c *SweepConfig) validate() error {
	if c.Scale < 0 {
		return fmt.Errorf("sim: sweep scale %g must be non-negative (0 means full scale)", c.Scale)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("sim: sweep warmup %d must be non-negative", c.Warmup)
	}
	for _, p := range c.Policies {
		if !contains(SweepPolicies, p) {
			return fmt.Errorf("sim: unknown sweep policy %q (have %v)", p, SweepPolicies)
		}
	}
	for _, g := range c.Granularities {
		if !contains(SweepGranularities, g) {
			return fmt.Errorf("sim: unknown sweep granularity %q (have %v)", g, SweepGranularities)
		}
	}
	for _, tb := range c.CapacitiesTB {
		if tb <= 0 {
			return fmt.Errorf("sim: sweep cache size %g TB must be positive", tb)
		}
	}
	return nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// scaledCapacity converts a nominal full-scale TB size into simulated bytes,
// matching the Figure 10 experiment's scaling and clamp.
func scaledCapacity(tb, scale float64) int64 {
	capBytes := int64(tb * scale * (1 << 40))
	if capBytes < 1<<20 {
		capBytes = 1 << 20
	}
	return capBytes
}

// grid enumerates the cell specs in deterministic output order:
// granularity-major, then policy, then capacity.
func (c *SweepConfig) grid() []cellSpec {
	var specs []cellSpec
	for _, g := range c.Granularities {
		ax := axisFile
		if g == "filecule" {
			ax = axisFilecule
		}
		for _, p := range c.Policies {
			for _, tb := range c.CapacitiesTB {
				specs = append(specs, cellSpec{
					Policy:      p,
					Granularity: g,
					CacheTB:     tb,
					Capacity:    scaledCapacity(tb, c.Scale),
					axis:        ax,
				})
			}
		}
	}
	return specs
}

// CellResult is one grid cell's outcome.
type CellResult struct {
	Policy        string        `json:"policy"`
	Granularity   string        `json:"granularity"`
	CacheTB       float64       `json:"cache_tb"`
	CapacityBytes int64         `json:"capacity_bytes"`
	Metrics       cache.Metrics `json:"metrics"`
	MissRate      float64       `json:"miss_rate"`
	ByteMissRate  float64       `json:"byte_miss_rate"`
}

// SweepResult is the machine-readable outcome of a sweep, stable enough to
// serve as a benchmark baseline: everything except Engine, Workers and
// WallSeconds is a pure function of the trace and config.
type SweepResult struct {
	Schema      string       `json:"schema"`
	Engine      string       `json:"engine"` // "single-pass" or "sequential"
	Jobs        int          `json:"jobs"`
	Files       int          `json:"files"`
	Filecules   int          `json:"filecules"`
	Requests    int          `json:"requests"`
	Scale       float64      `json:"scale"`
	Warmup      int64        `json:"warmup,omitempty"`
	Workers     int          `json:"workers"`
	WallSeconds float64      `json:"wall_seconds"`
	Cells       []CellResult `json:"cells"`
}

// WriteJSON emits the result as indented JSON.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// batch is one resolved chunk of the request stream, fanned out to every
// worker and returned to the pool by whichever worker finishes it last.
type batch struct {
	base int64
	n    int
	res  [numAxes][]resolved
	refs atomic.Int32
}

// Sweep replays the full policy × granularity × capacity grid from a single
// pass over reqs. One reader resolves each request once per axis into pooled
// batches; the cells are sharded round-robin over Workers goroutines, each
// owning its cells' state exclusively (no locks on the simulation path).
// Every cell consumes batches in stream order, so results are deterministic
// and independent of Workers, and — cell for cell — byte-identical to
// SweepSequential and to cache.Sim replays (see TestSweepMatchesSequential).
func Sweep(t *trace.Trace, p *core.Partition, reqs []trace.Request, cfg SweepConfig) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	specs := cfg.grid()

	// Static shared state: axes, bundle keys, and per-axis next-use chains
	// (computed once, shared by all OPT cells of the axis).
	var axes [numAxes]*axisData
	var nextUse [numAxes][]int64
	var bundleNextUse []int64
	var bKeys []int32
	needAxis := [numAxes]bool{}
	needOPT := [numAxes]bool{}
	needBundle, needBundleOPT := false, false
	for _, sp := range specs {
		needAxis[sp.axis] = true
		if sp.Granularity == "bundle" {
			needBundle = true
			if sp.Policy == "opt" {
				needBundleOPT = true
			}
		} else if sp.Policy == "opt" {
			needOPT[sp.axis] = true
		}
	}
	if needAxis[axisFile] {
		axes[axisFile] = newFileAxis(t)
	}
	if needAxis[axisFilecule] {
		axes[axisFilecule] = newFileculeAxis(t, p)
	}
	for k := axisKind(0); k < numAxes; k++ {
		if needOPT[k] {
			nextUse[k] = nextUseBySlot(axes[k].slotOf, axes[k].nSlots, reqs)
		}
	}
	nBundles := int32(p.NumFilecules()) + int32(len(t.Files))
	if needBundle {
		bKeys = bundleKeys(t, p)
		if needBundleOPT {
			bundleNextUse = nextUseBySlot(bKeys, nBundles, reqs)
		}
	}

	cells := make([]cell, len(specs))
	for i, sp := range specs {
		cells[i] = buildCell(sp, axes[sp.axis], cfg.Warmup, nextUse[sp.axis], bKeys, nBundles, bundleNextUse)
	}

	// Fan the resolved stream out to the workers.
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	pool := sync.Pool{New: func() interface{} {
		b := &batch{}
		for k := axisKind(0); k < numAxes; k++ {
			if needAxis[k] {
				b.res[k] = make([]resolved, cfg.BatchSize)
			}
		}
		return b
	}}
	chans := make([]chan *batch, workers)
	for i := range chans {
		chans[i] = make(chan *batch, 4)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := cells[w:]
			for b := range chans[w] {
				for i := 0; i < len(mine); i += workers {
					c := mine[i]
					c.run(b.res[c.spec().axis][:b.n], b.base)
				}
				if b.refs.Add(-1) == 0 {
					pool.Put(b)
				}
			}
		}(w)
	}
	for off := 0; off < len(reqs); off += cfg.BatchSize {
		end := off + cfg.BatchSize
		if end > len(reqs) {
			end = len(reqs)
		}
		chunk := reqs[off:end]
		b := pool.Get().(*batch)
		b.base = int64(off)
		b.n = len(chunk)
		for k := axisKind(0); k < numAxes; k++ {
			if needAxis[k] {
				axes[k].resolve(chunk, b.res[k][:len(chunk)])
			}
		}
		b.refs.Store(int32(workers))
		for _, ch := range chans {
			ch <- b
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	res := newSweepResult(t, p, reqs, cfg, "single-pass", workers)
	for _, c := range cells {
		res.Cells = append(res.Cells, cellResultOf(c.spec(), c.metrics()))
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// buildCell constructs one dense cell for a spec.
func buildCell(sp cellSpec, ax *axisData, warmup int64, nextUse []int64, bKeys []int32, nBundles int32, bundleNextUse []int64) cell {
	if sp.Granularity == "bundle" {
		var base denseBase
		switch sp.Policy {
		case "lru":
			base = newLRUState(nBundles)
		case "arc":
			base = newARCState(nBundles, sp.Capacity)
		case "gds":
			base = newGDSState(nBundles)
		case "opt":
			base = newOPTState(nBundles, bundleNextUse)
		}
		return newBundleCell(sp, ax, warmup, bKeys, nBundles, base)
	}
	cc := newCellCore(sp, ax, warmup)
	switch sp.Policy {
	case "lru":
		return &lruCell{cellCore: cc, st: newLRUState(ax.nSlots)}
	case "arc":
		return &arcCell{cellCore: cc, st: newARCState(ax.nSlots, sp.Capacity)}
	case "gds":
		return &gdsCell{cellCore: cc, st: newGDSState(ax.nSlots)}
	case "opt":
		return &optCell{cellCore: cc, st: newOPTState(ax.nSlots, nextUse)}
	}
	panic("sim: unreachable policy " + sp.Policy)
}

// SweepSequential replays the identical grid cell by cell through the
// cache package's map-and-interface simulator. It is the reference the
// single-pass engine is differentially tested against, and the baseline the
// speedup benchmark measures. Each cell honestly pays its own full cost:
// granularity construction, next-use pre-pass, and a complete pass over the
// request stream.
func SweepSequential(t *trace.Trace, p *core.Partition, reqs []trace.Request, cfg SweepConfig) (*SweepResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	specs := cfg.grid()

	res := newSweepResult(t, p, reqs, cfg, "sequential", 1)
	for _, sp := range specs {
		var g cache.Granularity
		if sp.Granularity == "filecule" {
			g = cache.NewFileculeGranularity(t, p)
		} else {
			g = cache.NewFileGranularity(t)
		}
		var pol cache.Policy
		switch sp.Policy {
		case "lru":
			pol = cache.NewLRU()
		case "arc":
			pol = cache.NewARC(sp.Capacity)
		case "gds":
			pol = cache.NewGDS()
		case "opt":
			if sp.Granularity == "bundle" {
				pol = cache.NewOPTPolicy(cache.NextUseBundles(p, reqs))
			} else {
				pol = cache.NewOPTPolicy(cache.NextUse(g, reqs))
			}
		}
		if sp.Granularity == "bundle" {
			pol = cache.NewBundlePolicy(pol, p)
		}
		s := cache.NewSim(t, g, pol, sp.Capacity)
		s.Warmup = cfg.Warmup
		m := s.Replay(reqs)
		res.Cells = append(res.Cells, cellResultOf(sp, m))
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

func newSweepResult(t *trace.Trace, p *core.Partition, reqs []trace.Request, cfg SweepConfig, engine string, workers int) *SweepResult {
	return &SweepResult{
		Schema:    SweepSchema,
		Engine:    engine,
		Jobs:      len(t.Jobs),
		Files:     len(t.Files),
		Filecules: p.NumFilecules(),
		Requests:  len(reqs),
		Scale:     cfg.Scale,
		Warmup:    cfg.Warmup,
		Workers:   workers,
	}
}

func cellResultOf(sp cellSpec, m cache.Metrics) CellResult {
	return CellResult{
		Policy:        sp.Policy,
		Granularity:   sp.Granularity,
		CacheTB:       sp.CacheTB,
		CapacityBytes: sp.Capacity,
		Metrics:       m,
		MissRate:      m.MissRate(),
		ByteMissRate:  m.ByteMissRate(),
	}
}
