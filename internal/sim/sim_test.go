package sim

import (
	"testing"
	"time"
)

var t0 = time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := New(t0)
	var order []int
	k.At(t0.Add(3*time.Second), func() { order = append(order, 3) })
	k.At(t0.Add(1*time.Second), func() { order = append(order, 1) })
	k.At(t0.Add(2*time.Second), func() { order = append(order, 2) })
	if n := k.Run(); n != 3 {
		t.Fatalf("Run processed %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if !k.Now().Equal(t0.Add(3 * time.Second)) {
		t.Errorf("Now = %v", k.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	k := New(t0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(t0.Add(time.Second), func() { order = append(order, i) })
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-break order = %v, want FIFO", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	k := New(t0)
	hits := 0
	var chain func()
	chain = func() {
		hits++
		if hits < 4 {
			k.After(time.Second, chain)
		}
	}
	k.After(time.Second, chain)
	k.Run()
	if hits != 4 {
		t.Errorf("chain ran %d times, want 4", hits)
	}
	if got := k.Now(); !got.Equal(t0.Add(4 * time.Second)) {
		t.Errorf("Now = %v, want t0+4s", got)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(t0)
	ran := 0
	for i := 1; i <= 5; i++ {
		k.At(t0.Add(time.Duration(i)*time.Hour), func() { ran++ })
	}
	n := k.RunUntil(t0.Add(3 * time.Hour))
	if n != 3 || ran != 3 {
		t.Fatalf("RunUntil processed %d events, want 3", n)
	}
	if !k.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("Now = %v, want deadline", k.Now())
	}
	if k.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", k.Pending())
	}
	// Clock advances to deadline even with no events.
	k2 := New(t0)
	k2.RunUntil(t0.Add(time.Minute))
	if !k2.Now().Equal(t0.Add(time.Minute)) {
		t.Errorf("empty RunUntil Now = %v", k2.Now())
	}
}

func TestHalt(t *testing.T) {
	k := New(t0)
	ran := 0
	k.After(time.Second, func() { ran++; k.Halt() })
	k.After(2*time.Second, func() { ran++ })
	if n := k.Run(); n != 1 || ran != 1 {
		t.Fatalf("Run after Halt processed %d events", n)
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	// Resume.
	if n := k.Run(); n != 1 || ran != 2 {
		t.Errorf("resumed Run processed %d events", n)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	cases := []func(){
		func() { New(t0).At(t0.Add(-time.Second), func() {}) },
		func() { New(t0).After(-time.Second, func() {}) },
		func() { New(t0).At(t0, nil) },
		func() {
			k := New(t0)
			k.After(0, func() { k.Run() }) // reentrant
			k.Run()
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
