package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"filecule/internal/core"
	"filecule/internal/synth"
	"filecule/internal/trace"
)

// sweepWorkload lazily generates the shared differential-test workload: the
// synthetic paper trace at diffScale, its filecule partition, and the
// flattened request stream.
var sweepWorkload = struct {
	once sync.Once
	t    *trace.Trace
	p    *core.Partition
	reqs []trace.Request
}{}

func workload(t *testing.T) (*trace.Trace, *core.Partition, []trace.Request) {
	t.Helper()
	w := &sweepWorkload
	w.once.Do(func() {
		tr, err := synth.Generate(synth.DZero(1, diffScale))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		w.t = tr
		w.p = core.Identify(tr)
		w.reqs = tr.Requests()
	})
	if w.t == nil {
		t.Fatal("workload generation failed in an earlier test")
	}
	return w.t, w.p, w.reqs
}

// TestSweepMatchesSequential is the engine's contract: every cell of the
// full grid — policies × granularities × the seven paper capacities — must
// be byte-identical (Go struct equality on cache.Metrics) between the
// single-pass dense engine and one-at-a-time cache.Sim replays.
func TestSweepMatchesSequential(t *testing.T) {
	tr, p, reqs := workload(t)
	cfg := SweepConfig{Scale: diffScale}

	got, err := Sweep(tr, p, reqs, cfg)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	want, err := SweepSequential(tr, p, reqs, cfg)
	if err != nil {
		t.Fatalf("SweepSequential: %v", err)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("cell count %d != %d", len(got.Cells), len(want.Cells))
	}
	if len(got.Cells) != len(SweepPolicies)*len(SweepGranularities)*len(defaultCapacitiesTB) {
		t.Fatalf("grid has %d cells, want full %d-cell grid", len(got.Cells),
			len(SweepPolicies)*len(SweepGranularities)*len(defaultCapacitiesTB))
	}
	for i := range got.Cells {
		g, w := got.Cells[i], want.Cells[i]
		if g != w {
			t.Errorf("cell %s/%s/%gTB: single-pass %+v != sequential %+v",
				g.Policy, g.Granularity, g.CacheTB, g, w)
		}
		if g.Metrics.Requests != int64(len(reqs)) {
			t.Errorf("cell %s/%s/%gTB: replayed %d of %d requests",
				g.Policy, g.Granularity, g.CacheTB, g.Metrics.Requests, len(reqs))
		}
	}
}

// TestSweepWorkerInvariance pins that results do not depend on how cells are
// sharded over workers.
func TestSweepWorkerInvariance(t *testing.T) {
	tr, p, reqs := workload(t)
	cfg := SweepConfig{Scale: diffScale, CapacitiesTB: []float64{2, 20}}

	var base []CellResult
	for _, workers := range []int{1, 3, 8} {
		cfg.Workers = workers
		res, err := Sweep(tr, p, reqs, cfg)
		if err != nil {
			t.Fatalf("Sweep(workers=%d): %v", workers, err)
		}
		if base == nil {
			base = res.Cells
			continue
		}
		if !reflect.DeepEqual(res.Cells, base) {
			t.Errorf("workers=%d: cells differ from workers=1 run", workers)
		}
	}
}

// TestSweepBatchInvariance pins that results do not depend on batch
// boundaries, including the degenerate one-request-per-batch case.
func TestSweepBatchInvariance(t *testing.T) {
	tr, p, reqs := workload(t)
	cfg := SweepConfig{
		Scale:         diffScale,
		Policies:      []string{"lru", "arc"},
		Granularities: []string{"filecule", "bundle"},
		CapacitiesTB:  []float64{5},
	}

	var base []CellResult
	for _, bs := range []int{1, 7, 4096} {
		cfg.BatchSize = bs
		res, err := Sweep(tr, p, reqs, cfg)
		if err != nil {
			t.Fatalf("Sweep(batch=%d): %v", bs, err)
		}
		if base == nil {
			base = res.Cells
			continue
		}
		if !reflect.DeepEqual(res.Cells, base) {
			t.Errorf("batch=%d: cells differ from batch=1 run", bs)
		}
	}
}

// TestSweepWarmup pins warmup handling against the sequential reference.
func TestSweepWarmup(t *testing.T) {
	tr, p, reqs := workload(t)
	cfg := SweepConfig{
		Scale:         diffScale,
		Policies:      []string{"gds", "opt"},
		Granularities: []string{"file", "bundle"},
		CapacitiesTB:  []float64{1, 10},
		Warmup:        int64(len(reqs) / 3),
	}
	got, err := Sweep(tr, p, reqs, cfg)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	want, err := SweepSequential(tr, p, reqs, cfg)
	if err != nil {
		t.Fatalf("SweepSequential: %v", err)
	}
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Errorf("warmup sweep differs from sequential reference")
	}
	if n := got.Cells[0].Metrics.Requests; n != int64(len(reqs))-cfg.Warmup {
		t.Errorf("warmup: counted %d requests, want %d", n, int64(len(reqs))-cfg.Warmup)
	}
}

// TestSweepSpeedup asserts the engine's reason to exist: the single-pass
// dense sweep must beat one-at-a-time cache.Sim replays of the same grid by
// at least 3x wall clock. The measured margin is much larger (~9x on one
// CPU), so a 3x floor stays robust to machine noise; it is still a timing
// assertion, so it is skipped in -short runs and under the race detector.
func TestSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing comparison meaningless under the race detector")
	}
	tr, p, reqs := workload(t)
	cfg := SweepConfig{Scale: diffScale}

	fast, err := Sweep(tr, p, reqs, cfg)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	slow, err := SweepSequential(tr, p, reqs, cfg)
	if err != nil {
		t.Fatalf("SweepSequential: %v", err)
	}
	speedup := slow.WallSeconds / fast.WallSeconds
	t.Logf("single-pass %.2fs, sequential %.2fs, speedup %.1fx",
		fast.WallSeconds, slow.WallSeconds, speedup)
	if speedup < 3 {
		t.Errorf("single-pass sweep only %.1fx faster than sequential, want >= 3x", speedup)
	}
}

// TestSweepValidates covers config rejection.
func TestSweepValidates(t *testing.T) {
	tr, p, reqs := workload(t)
	bad := []SweepConfig{
		{Policies: []string{"lru", "mru"}},
		{Granularities: []string{"block"}},
		{CapacitiesTB: []float64{1, 0}},
		{CapacitiesTB: []float64{-5}},
		{Scale: -1},
		{Warmup: -1},
	}
	for _, cfg := range bad {
		if _, err := Sweep(tr, p, reqs, cfg); err == nil {
			t.Errorf("Sweep accepted invalid config %+v", cfg)
		}
		if _, err := SweepSequential(tr, p, reqs, cfg); err == nil {
			t.Errorf("SweepSequential accepted invalid config %+v", cfg)
		}
	}
}

// TestSweepJSONRoundTrip pins the result schema: encoding and re-decoding
// preserves every cell, and the schema tag is versioned.
func TestSweepJSONRoundTrip(t *testing.T) {
	tr, p, reqs := workload(t)
	cfg := SweepConfig{
		Scale:         diffScale,
		Policies:      []string{"lru"},
		Granularities: []string{"file", "filecule"},
		CapacitiesTB:  []float64{1, 100},
	}
	res, err := Sweep(tr, p, reqs, cfg)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back SweepResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Schema != SweepSchema {
		t.Errorf("schema %q, want %q", back.Schema, SweepSchema)
	}
	if !reflect.DeepEqual(back.Cells, res.Cells) {
		t.Errorf("cells changed across JSON round trip")
	}
	if back.Requests != len(reqs) || back.Jobs != len(tr.Jobs) {
		t.Errorf("trace header mismatch: %+v", back)
	}
}
