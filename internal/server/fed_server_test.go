package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"filecule/internal/core"
	"filecule/internal/fed"
	"filecule/internal/synth"
	"filecule/internal/trace"
)

// startOn runs s on l until the test ends.
func startOn(t *testing.T, s *Server, l net.Listener) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, l) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Run: %v", err)
		}
	})
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestFederatedServersConverge stands up two real HTTP servers, each fed
// half the trace over /v1/jobs/batch, peered at each other, and waits for
// both /v1/fed/partition responses to become byte-identical to a
// single-node identification of the whole trace.
func TestFederatedServersConverge(t *testing.T) {
	tr, err := synth.Generate(synth.DZero(17, 0.003))
	if err != nil {
		t.Fatal(err)
	}

	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseA := "http://" + lA.Addr().String()
	baseB := "http://" + lB.Addr().String()

	mk := func(site, peer string, inc uint64) *Server {
		return New(Config{
			Catalog: tr.Files,
			Fed: &fed.Config{
				Site:        site,
				Peers:       []string{peer},
				Interval:    10 * time.Millisecond,
				Incarnation: inc,
				Seed:        int64(inc),
			},
		})
	}
	sA := mk("site-a", baseB, 1)
	sB := mk("site-b", baseA, 2)
	startOn(t, sA, lA)
	startOn(t, sB, lB)

	// Deal job i to server i%2, batched.
	var batches [2]BatchBody
	for i := range tr.Jobs {
		batches[i%2].Jobs = append(batches[i%2].Jobs, JobBody{Files: tr.Jobs[i].Files})
	}
	for i, base := range []string{baseA, baseB} {
		bb, _ := json.Marshal(batches[i])
		resp, err := http.Post(base+"/v1/jobs/batch", "application/json", bytes.NewReader(bb))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch to %s: %d", base, resp.StatusCode)
		}
		resp.Body.Close()
	}

	wantBytes, err := PartitionJSON(core.Identify(tr), int64(len(tr.Jobs)), &trace.Trace{Files: tr.Files})
	if err != nil {
		t.Fatal(err)
	}
	want := string(wantBytes)
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, gotA := httpGet(t, baseA+"/v1/fed/partition")
		_, gotB := httpGet(t, baseB+"/v1/fed/partition")
		if strings.TrimSpace(gotA) == want && strings.TrimSpace(gotB) == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: lens %d/%d want %d", len(gotA), len(gotB), len(want))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Both exchanged successfully, so readiness must report ok.
	if code, body := httpGet(t, baseA+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after convergence: %d %s", code, body)
	}
	// And the federation gauges must be present and healthy.
	_, metrics := httpGet(t, baseA+"/metrics")
	for _, needle := range []string{
		"filecule_fed_degraded 0",
		"filecule_fed_sites_known 1",
		`filecule_fed_peer_healthy{peer="` + baseB + `"} 1`,
		`filecule_fed_peer_breaker_state{peer="` + baseB + `"} 0`,
		"filecule_fed_peer_exchanges_total",
	} {
		if !strings.Contains(metrics, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
}

// TestReadyzDegradedWithDeadPeer: a federated server whose peer never
// answers is degraded (503 with a reason) but still alive and serving.
func TestReadyzDegradedWithDeadPeer(t *testing.T) {
	s := New(Config{Fed: &fed.Config{
		Site:        "lonely",
		Peers:       []string{"http://127.0.0.1:1"},
		Incarnation: 9,
	}})
	if s.fedErr != nil {
		t.Fatal(s.fedErr)
	}
	w := do(s, "GET", "/readyz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead peer: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "no successful exchange yet") {
		t.Errorf("degraded reason missing: %s", w.Body)
	}
	if h := do(s, "GET", "/healthz", ""); h.Code != http.StatusOK {
		t.Errorf("healthz while degraded: %d", h.Code)
	}
	// Degraded shows in metrics too.
	m := do(s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(m, "filecule_fed_degraded 1") {
		t.Errorf("metrics missing degraded gauge:\n%s", m)
	}
}

// TestReadyzWithoutFed: the probe exists on non-federated servers too.
func TestReadyzWithoutFed(t *testing.T) {
	s, _ := testServer(t)
	if w := do(s, "GET", "/readyz", ""); w.Code != http.StatusOK {
		t.Errorf("readyz: %d", w.Code)
	}
}

// TestFedConfigErrorSurfacesInRun: an invalid federation config (no site
// name) must fail Run rather than silently serving unfederated.
func TestFedConfigErrorSurfacesInRun(t *testing.T) {
	s := New(Config{Fed: &fed.Config{}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), l); err == nil {
		t.Fatal("Run accepted a federation config with no site")
	}
}

// TestSlowlorisBodyCutOff is the regression test for per-request body read
// deadlines: with generous server-wide timeouts, a client that sends
// headers and then trickles nothing must be cut off by BodyReadTimeout,
// while concurrent well-behaved requests stay fast.
func TestSlowlorisBodyCutOff(t *testing.T) {
	tr, err := synth.Generate(synth.DZero(5, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Catalog:         tr.Files,
		BodyReadTimeout: 200 * time.Millisecond,
		ReadTimeout:     time.Hour, // deliberately useless: only the per-body deadline protects us
		WriteTimeout:    time.Hour,
		IdleTimeout:     time.Hour,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	startOn(t, s, l)

	// The slow client: full headers, half a body, then silence.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	req := "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"files\":[1,"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}

	// Meanwhile a normal request must not be starved.
	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz during slowloris: %d", code)
	}
	if resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(`{"files":[1,2]}`)); err != nil {
		t.Errorf("observe during slowloris: %v", err)
	} else {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("observe during slowloris: %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The stalled request must be answered (408) or torn down within the
	// body deadline plus slack — not after ReadTimeout's hour.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	elapsed := time.Since(start)
	if err == nil && !strings.Contains(line, "408") {
		t.Errorf("slowloris response line %q, want 408 or closed connection", strings.TrimSpace(line))
	}
	if elapsed > 5*time.Second {
		t.Errorf("slowloris connection lived %v, want cutoff near the 200ms body deadline", elapsed)
	}
}

// captureTransport records the delta bytes a fed node asks it to deliver
// and fails the exchange, so tests can replay raw wire messages over HTTP.
type captureTransport struct{ delta []byte }

func (c *captureTransport) Exchange(_ context.Context, _ string, delta []byte) ([]byte, error) {
	c.delta = append(c.delta[:0], delta...)
	return nil, context.DeadlineExceeded
}

// craftFedDelta builds the wire delta a peer with the given site name would
// send after observing the given jobs.
func craftFedDelta(tb testing.TB, site string, jobs ...[]trace.FileID) []byte {
	tb.Helper()
	eng := core.NewEngine(0)
	for _, files := range jobs {
		eng.Observe(files)
	}
	ct := &captureTransport{}
	n, err := fed.NewNode(fed.Config{Site: site, Self: eng, Peers: []string{"r"}, Transport: ct, Incarnation: 1})
	if err != nil {
		tb.Fatal(err)
	}
	n.ExchangeAll()
	if ct.delta == nil {
		tb.Fatal("no delta captured")
	}
	return ct.delta
}

// TestFedExchangeRejectsOutOfCatalogDelta: a well-formed delta whose file
// IDs exceed the server's catalog must be rejected with 400, and the merged
// partition endpoint must keep serving — previously the held remote state
// made /v1/fed/partition panic on catalog sizing for every request.
func TestFedExchangeRejectsOutOfCatalogDelta(t *testing.T) {
	tr, err := synth.Generate(synth.DZero(5, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Catalog: tr.Files,
		Fed:     &fed.Config{Site: "local", Incarnation: 3},
	})
	if s.fedErr != nil {
		t.Fatal(s.fedErr)
	}
	bad := craftFedDelta(t, "wide", []trace.FileID{1, trace.FileID(len(tr.Files) + 1000)})
	if w := do(s, "POST", fed.ExchangePath, string(bad)); w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-catalog delta: %d %s", w.Code, w.Body)
	}
	if w := do(s, "GET", "/v1/fed/partition", ""); w.Code != http.StatusOK {
		t.Fatalf("fed partition after rejected delta: %d %s", w.Code, w.Body)
	}
	// An in-catalog delta over the same endpoint still applies and sizes.
	good := craftFedDelta(t, "narrow", []trace.FileID{1, 2})
	if w := do(s, "POST", fed.ExchangePath, string(good)); w.Code != http.StatusOK {
		t.Fatalf("in-catalog delta: %d %s", w.Code, w.Body)
	}
	w := do(s, "GET", "/v1/fed/partition", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"bytes"`) {
		t.Fatalf("fed partition after applied delta: %d %s", w.Code, w.Body)
	}
}

// TestFedExchangeNotBoundByJSONBodyCap: the exchange endpoint's body limit
// is the wire format's delta ceiling, not the JSON-API cap — a full resync
// delta larger than MaxBodyBytes must still be accepted, or a large-state
// peer would get 413 forever and the federation never converge.
func TestFedExchangeNotBoundByJSONBodyCap(t *testing.T) {
	s := New(Config{
		MaxBodyBytes: 64,
		Fed:          &fed.Config{Site: "local", Incarnation: 3},
	})
	if s.fedErr != nil {
		t.Fatal(s.fedErr)
	}
	delta := craftFedDelta(t, "bulky", []trace.FileID{0, 1, 2}, []trace.FileID{3, 4}, []trace.FileID{5, 6, 7})
	if len(delta) <= 64 {
		t.Fatalf("crafted delta is only %d bytes; grow the jobs", len(delta))
	}
	if w := do(s, "POST", fed.ExchangePath, string(delta)); w.Code != http.StatusOK {
		t.Fatalf("exchange body over MaxBodyBytes: %d %s", w.Code, w.Body)
	}
	// The JSON endpoints stay capped.
	big := `{"files":[` + strings.Repeat("1,", 64) + `1]}`
	if w := do(s, "POST", "/v1/jobs", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("JSON body over MaxBodyBytes: %d %s", w.Code, w.Body)
	}
}
