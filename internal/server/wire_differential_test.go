package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"filecule/internal/cache"
	"filecule/internal/core"
	"filecule/internal/synth"
	"filecule/internal/trace"
	"filecule/internal/wire"
)

// TestWireJSONDifferential replays one synthetic trace against two servers
// with identical configuration — one driven over the binary wire protocol,
// one over HTTP/JSON — and requires byte-identical state at every
// comparison point: observe acknowledgements request by request, the full
// canonical partition, and cache advice for an identically evolving client
// residency. This is the proof that the wire stack is a pure transport
// change: same decisions, different framing.
func TestWireJSONDifferential(t *testing.T) {
	tr, err := synth.Generate(synth.DZero(10, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	sWire := New(Config{Catalog: tr.Files})
	sJSON := New(Config{Catalog: tr.Files})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sWire.RunWire(ctx, l) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("RunWire: %v", err)
		}
	}()
	wc, err := wire.Dial(l.Addr().String(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	// The simulated client cache: resident units evolved from the advice
	// both stacks return (which must agree, so one evolution serves both).
	var capacity int64
	for _, f := range tr.Files {
		capacity += f.Size
	}
	capacity = capacity/10 + 1
	resident := map[cache.UnitID]int64{} // unit -> last access

	jobs := len(tr.Jobs)
	if jobs > 400 {
		jobs = 400
	}
	for i := 0; i < jobs; i++ {
		files := tr.Jobs[i].Files

		wr, err := wc.Observe(files)
		if err != nil {
			t.Fatalf("job %d: wire observe: %v", i, err)
		}
		w := do(sJSON, "POST", "/v1/jobs", marshalJob(t, files))
		if w.Code != http.StatusOK {
			t.Fatalf("job %d: HTTP observe: %d %s", i, w.Code, w.Body)
		}
		var jr ObserveResult
		if err := json.Unmarshal(w.Body.Bytes(), &jr); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if wr.Observed != jr.Observed || wr.Filecules != jr.Filecules {
			t.Fatalf("job %d: wire ack (%d jobs, %d filecules) != JSON ack (%d jobs, %d filecules)",
				i, wr.Observed, wr.Filecules, jr.Observed, jr.Filecules)
		}

		if i%40 != 39 {
			continue
		}
		comparePartitions(t, i, wc, sJSON)
		compareSummaries(t, i, wc, sJSON)
		if len(files) > 0 {
			compareFilecules(t, i, wc, sJSON, files[0])
		}
		compareAdvice(t, i, wc, sJSON, cache.AdviceRequest{
			Capacity: capacity,
			Files:    files,
			Resident: residentList(resident),
		}, resident, int64(i))
	}
	comparePartitions(t, jobs, wc, sJSON)
	compareSummaries(t, jobs, wc, sJSON)

	// A file never observed must 404 identically on both surfaces. Every
	// replayed job drew from the trace's catalog, so an ID one past the
	// catalog bound of the filter below is never a member; instead probe
	// with an in-catalog file that appears in no replayed job, if any.
	if unseen := unseenFile(tr, jobs); unseen >= 0 {
		if _, err := wc.Filecule(unseen); err == nil {
			t.Fatalf("wire lookup of unseen file %d succeeded", unseen)
		} else if re, ok := err.(*wire.RemoteError); !ok || re.Code != http.StatusNotFound {
			t.Fatalf("wire lookup of unseen file %d: %v, want remote 404", unseen, err)
		}
		if w := do(sJSON, "GET", fmt.Sprintf("/v1/filecules/%d", unseen), ""); w.Code != http.StatusNotFound {
			t.Fatalf("HTTP lookup of unseen file %d: %d", unseen, w.Code)
		}
	}
}

// unseenFile returns a catalog file absent from the first n jobs, or -1.
func unseenFile(tr *trace.Trace, n int) trace.FileID {
	seen := make([]bool, len(tr.Files))
	for _, j := range tr.Jobs[:n] {
		for _, f := range j.Files {
			seen[f] = true
		}
	}
	for f, s := range seen {
		if !s {
			return trace.FileID(f)
		}
	}
	return -1
}

func marshalJob(t *testing.T, files []trace.FileID) string {
	t.Helper()
	b, err := json.Marshal(JobBody{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// residentList renders the resident map deterministically (sorted by unit)
// so both stacks receive the identical request.
func residentList(resident map[cache.UnitID]int64) []cache.ResidentUnit {
	units := make([]cache.UnitID, 0, len(resident))
	for u := range resident {
		units = append(units, u)
	}
	sort.Slice(units, func(a, b int) bool { return units[a] < units[b] })
	out := make([]cache.ResidentUnit, len(units))
	for i, u := range units {
		out[i] = cache.ResidentUnit{Unit: u, LastAccess: resident[u]}
	}
	return out
}

// comparePartitions requires the wire partition reply, re-encoded in the
// HTTP surface's canonical JSON, to be byte-identical to GET /v1/partition.
func comparePartitions(t *testing.T, i int, wc *wire.Client, sJSON *Server) {
	t.Helper()
	pr, err := wc.Partition()
	if err != nil {
		t.Fatalf("job %d: wire partition: %v", i, err)
	}
	body := PartitionBody{Observed: pr.Observed, Filecules: make([]FileculeBody, 0, len(pr.Filecules))}
	for id, fc := range pr.Filecules {
		body.Filecules = append(body.Filecules, FileculeBody{
			ID: id, Files: fc.Files, Requests: fc.Requests, Bytes: fc.Bytes,
		})
	}
	wireJSON, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	w := do(sJSON, "GET", "/v1/partition", "")
	if w.Code != http.StatusOK {
		t.Fatalf("job %d: GET /v1/partition: %d", i, w.Code)
	}
	httpJSON := strings.TrimSpace(w.Body.String())
	if string(wireJSON) != httpJSON {
		t.Fatalf("job %d: partitions diverge:\nwire: %.200s\nhttp: %.200s", i, wireJSON, httpJSON)
	}
}

// compareSummaries requires the wire summary reply, re-encoded in the HTTP
// surface's JSON, to be byte-identical to GET /v1/partition/summary — which
// is why the mean crosses the wire as exact IEEE-754 bits.
func compareSummaries(t *testing.T, i int, wc *wire.Client, sJSON *Server) {
	t.Helper()
	sr, err := wc.Summary()
	if err != nil {
		t.Fatalf("job %d: wire summary: %v", i, err)
	}
	wireJSON, err := json.Marshal(SummaryBody{
		Observed:          sr.Observed,
		Filecules:         sr.Filecules,
		Files:             sr.Files,
		Monatomic:         sr.Monatomic,
		MeanFilesPerGroup: sr.MeanFilesPerGroup,
		LargestFiles:      sr.LargestFiles,
		CoveredBytes:      sr.CoveredBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := do(sJSON, "GET", "/v1/partition/summary", "")
	if w.Code != http.StatusOK {
		t.Fatalf("job %d: GET /v1/partition/summary: %d", i, w.Code)
	}
	if httpJSON := strings.TrimSpace(w.Body.String()); string(wireJSON) != httpJSON {
		t.Fatalf("job %d: summaries diverge:\nwire: %s\nhttp: %s", i, wireJSON, httpJSON)
	}
}

// compareFilecules requires the wire per-file lookup, re-encoded as the
// HTTP surface's FileculeBody, to match GET /v1/filecules/{file} byte for
// byte.
func compareFilecules(t *testing.T, i int, wc *wire.Client, sJSON *Server, f trace.FileID) {
	t.Helper()
	fr, err := wc.Filecule(f)
	if err != nil {
		t.Fatalf("job %d: wire filecule %d: %v", i, f, err)
	}
	wireJSON, err := json.Marshal(FileculeBody{
		ID: fr.ID, Files: fr.Files, Requests: fr.Requests, Bytes: fr.Bytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := do(sJSON, "GET", fmt.Sprintf("/v1/filecules/%d", f), "")
	if w.Code != http.StatusOK {
		t.Fatalf("job %d: GET /v1/filecules/%d: %d %s", i, f, w.Code, w.Body)
	}
	if httpJSON := strings.TrimSpace(w.Body.String()); string(wireJSON) != httpJSON {
		t.Fatalf("job %d: filecule %d diverges:\nwire: %s\nhttp: %s", i, f, wireJSON, httpJSON)
	}
}

// compareAdvice requires byte-identical advice from both stacks, then
// applies the plan to the shared simulated residency.
func compareAdvice(t *testing.T, i int, wc *wire.Client, sJSON *Server,
	req cache.AdviceRequest, resident map[cache.UnitID]int64, now int64) {
	t.Helper()
	ar, err := wc.Advise(req)
	if err != nil {
		t.Fatalf("job %d: wire advise: %v", i, err)
	}
	wireRes := AdviceResult{
		Hits:         ar.Hits,
		Evict:        ar.Evict,
		Bypassed:     ar.Bypassed,
		BytesToLoad:  ar.BytesToLoad,
		BytesToEvict: ar.BytesToEvict,
	}
	for _, lu := range ar.Load {
		wireRes.Load = append(wireRes.Load, LoadBody{Unit: lu.Unit, Files: lu.Files, Bytes: lu.Bytes})
	}
	wireJSON, err := json.Marshal(wireRes)
	if err != nil {
		t.Fatal(err)
	}

	hreq := AdviseBody{CapacityBytes: req.Capacity, Files: req.Files}
	for _, r := range req.Resident {
		hreq.Resident = append(hreq.Resident, ResidentBody{Unit: r.Unit, LastAccess: r.LastAccess})
	}
	hbody, err := json.Marshal(hreq)
	if err != nil {
		t.Fatal(err)
	}
	w := do(sJSON, "POST", "/v1/cache/advise", string(hbody))
	if w.Code != http.StatusOK {
		t.Fatalf("job %d: POST /v1/cache/advise: %d %s", i, w.Code, w.Body)
	}
	httpJSON := strings.TrimSpace(w.Body.String())
	if string(wireJSON) != httpJSON {
		t.Fatalf("job %d: advice diverges:\nwire: %s\nhttp: %s", i, wireJSON, httpJSON)
	}

	// Evolve the shared residency from the (agreed) plan.
	for _, u := range ar.Hits {
		resident[u] = now
	}
	for _, u := range ar.Evict {
		delete(resident, u)
	}
	for _, lu := range ar.Load {
		resident[lu.Unit] = now
	}
}

// TestWireSelfTestHelper exercises the selftest path end to end: replay over
// the wire via LoadGen, then verify both surfaces agree. Kept in-package so
// cmd/filecule-serve's selftest has a tested building block.
func TestWireLoadGenReplay(t *testing.T) {
	tr, err := synth.Generate(synth.DZero(9, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Catalog: tr.Files})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.RunWire(ctx, l) }()
	defer func() { cancel(); <-done }()

	g := &LoadGen{WireAddr: l.Addr().String(), Clients: 4, BatchSize: 8}
	rep, err := g.Replay(tr)
	if err != nil {
		t.Fatalf("wire replay: %v (report: %v)", err, rep)
	}
	if rep.Jobs != len(tr.Jobs) || rep.Errors != 0 {
		t.Fatalf("report = %+v, want %d jobs and 0 errors", rep, len(tr.Jobs))
	}
	if got := s.Monitor().Observed(); got != int64(len(tr.Jobs)) {
		t.Errorf("observed = %d, want %d", got, len(tr.Jobs))
	}
	// The replayed state must equal a direct identification of the trace.
	want := core.Identify(tr)
	if got := s.Monitor().Snapshot(); !got.Equal(want) {
		t.Errorf("wire-replayed partition differs from direct identification")
	}
}
