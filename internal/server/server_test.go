package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"filecule/internal/core"
	"filecule/internal/synth"
	"filecule/internal/trace"
)

// testServer returns a server backed by a small synthetic trace's catalog,
// plus the trace itself.
func testServer(tb testing.TB) (*Server, *trace.Trace) {
	tb.Helper()
	t, err := synth.Generate(synth.DZero(11, 0.003))
	if err != nil {
		tb.Fatal(err)
	}
	return New(Config{Catalog: t.Files}), t
}

// do runs one request through the handler and returns the recorder.
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

func TestObserveThenQuery(t *testing.T) {
	s, _ := testServer(t)
	w := do(s, "POST", "/v1/jobs", `{"files":[1,2,3]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("observe: %d %s", w.Code, w.Body)
	}
	var res ObserveResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Observed != 1 || res.Filecules != 1 {
		t.Errorf("ObserveResult = %+v, want 1 job 1 filecule", res)
	}

	// Splitting job: {1,2} stays together, 3 departs.
	do(s, "POST", "/v1/jobs", `{"files":[1,2]}`)

	w = do(s, "GET", "/v1/filecules/1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("filecule: %d %s", w.Code, w.Body)
	}
	var fc FileculeBody
	if err := json.Unmarshal(w.Body.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	if len(fc.Files) != 2 || fc.Files[0] != 1 || fc.Files[1] != 2 || fc.Requests != 2 {
		t.Errorf("filecule of 1 = %+v, want files [1 2] requests 2", fc)
	}
	if fc.Bytes == 0 {
		t.Errorf("filecule bytes not populated from catalog")
	}

	w = do(s, "GET", "/v1/filecules/3", "")
	var fc3 FileculeBody
	if err := json.Unmarshal(w.Body.Bytes(), &fc3); err != nil {
		t.Fatal(err)
	}
	if len(fc3.Files) != 1 || fc3.Requests != 1 {
		t.Errorf("filecule of 3 = %+v, want singleton with 1 request", fc3)
	}
}

func TestBatchObserveMatchesSequential(t *testing.T) {
	s, tr := testServer(t)
	s2 := New(Config{Catalog: tr.Files})

	// Feed the same jobs batched and unbatched; partitions must agree.
	n := 200
	if n > len(tr.Jobs) {
		n = len(tr.Jobs)
	}
	var batch BatchBody
	for i := 0; i < n; i++ {
		body, _ := json.Marshal(JobBody{Files: tr.Jobs[i].Files})
		if w := do(s, "POST", "/v1/jobs", string(body)); w.Code != http.StatusOK {
			t.Fatalf("observe %d: %d %s", i, w.Code, w.Body)
		}
		batch.Jobs = append(batch.Jobs, JobBody{Files: tr.Jobs[i].Files})
	}
	bb, _ := json.Marshal(batch)
	if w := do(s2, "POST", "/v1/jobs/batch", string(bb)); w.Code != http.StatusOK {
		t.Fatalf("batch observe: %d %s", w.Code, w.Body)
	}

	if !s.Monitor().Snapshot().Equal(s2.Monitor().Snapshot()) {
		t.Error("batched and unbatched ingestion disagree")
	}
	p1 := do(s, "GET", "/v1/partition", "").Body.String()
	p2 := do(s2, "GET", "/v1/partition", "").Body.String()
	if p1 != p2 {
		t.Error("partition JSON differs between batched and unbatched ingestion")
	}
}

func TestPartitionMatchesBatchIdentify(t *testing.T) {
	s, tr := testServer(t)
	var batch BatchBody
	for i := range tr.Jobs {
		batch.Jobs = append(batch.Jobs, JobBody{Files: tr.Jobs[i].Files})
	}
	bb, _ := json.Marshal(batch)
	if w := do(s, "POST", "/v1/jobs/batch", string(bb)); w.Code != http.StatusOK {
		t.Fatalf("batch observe: %d %s", w.Code, w.Body)
	}

	want, err := PartitionJSON(core.Identify(tr), int64(len(tr.Jobs)), &trace.Trace{Files: tr.Files})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(do(s, "GET", "/v1/partition", "").Body.String())
	if got != string(want) {
		t.Errorf("served partition differs from core.Identify (%d vs %d bytes)", len(got), len(want))
	}
}

func TestSummary(t *testing.T) {
	s, _ := testServer(t)
	do(s, "POST", "/v1/jobs", `{"files":[0,1]}`)
	do(s, "POST", "/v1/jobs", `{"files":[2]}`)
	w := do(s, "GET", "/v1/partition/summary", "")
	if w.Code != http.StatusOK {
		t.Fatalf("summary: %d %s", w.Code, w.Body)
	}
	var sum SummaryBody
	if err := json.Unmarshal(w.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Observed != 2 || sum.Filecules != 2 || sum.Files != 3 || sum.Monatomic != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.LargestFiles != 2 || sum.MeanFilesPerGroup != 1.5 {
		t.Errorf("summary shape = %+v", sum)
	}
	if sum.CoveredBytes == 0 {
		t.Errorf("summary bytes not populated")
	}
}

func TestAdviseEndpoint(t *testing.T) {
	s, _ := testServer(t)
	do(s, "POST", "/v1/jobs", `{"files":[0,1]}`)

	w := do(s, "POST", "/v1/cache/advise", `{"capacityBytes":1099511627776,"files":[0]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("advise: %d %s", w.Code, w.Body)
	}
	var adv AdviceResult
	if err := json.Unmarshal(w.Body.Bytes(), &adv); err != nil {
		t.Fatal(err)
	}
	if len(adv.Load) != 1 || len(adv.Load[0].Files) != 2 {
		t.Errorf("advise = %+v, want one 2-file filecule load", adv)
	}
	if adv.BytesToLoad == 0 {
		t.Errorf("advise bytes = %+v", adv)
	}

	// Second call with the advised unit resident: pure hit.
	body := fmt.Sprintf(`{"capacityBytes":1099511627776,"files":[0],"resident":[{"unit":%d,"lastAccess":1}]}`,
		adv.Load[0].Unit)
	w = do(s, "POST", "/v1/cache/advise", body)
	var adv2 AdviceResult
	if err := json.Unmarshal(w.Body.Bytes(), &adv2); err != nil {
		t.Fatal(err)
	}
	if len(adv2.Hits) != 1 || len(adv2.Load) != 0 {
		t.Errorf("resident advise = %+v, want one hit", adv2)
	}
}

func TestAdviseWithoutCatalog(t *testing.T) {
	s := New(Config{})
	do(s, "POST", "/v1/jobs", `{"files":[0,1]}`)
	w := do(s, "POST", "/v1/cache/advise", `{"capacityBytes":100,"files":[0]}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("advise without catalog: %d, want 422", w.Code)
	}
}

func TestClientErrors(t *testing.T) {
	s, tr := testServer(t)
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", "POST", "/v1/jobs", `{"files":`, http.StatusBadRequest},
		{"wrong type", "POST", "/v1/jobs", `{"files":"nope"}`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/jobs", `{"fils":[1]}`, http.StatusBadRequest},
		{"trailing data", "POST", "/v1/jobs", `{"files":[1]}{"files":[2]}`, http.StatusBadRequest},
		{"negative file", "POST", "/v1/jobs", `{"files":[-1]}`, http.StatusBadRequest},
		{"file beyond catalog", "POST", "/v1/jobs",
			fmt.Sprintf(`{"files":[%d]}`, len(tr.Files)), http.StatusBadRequest},
		{"bad batch", "POST", "/v1/jobs/batch", `{"jobs":[{"files":[-2]}]}`, http.StatusBadRequest},
		{"bad filecule id", "GET", "/v1/filecules/xyz", "", http.StatusBadRequest},
		{"huge filecule id", "GET", "/v1/filecules/99999999999999999999", "", http.StatusBadRequest},
		{"unobserved file", "GET", "/v1/filecules/0", "", http.StatusNotFound},
		{"advise bad capacity", "POST", "/v1/cache/advise", `{"capacityBytes":0,"files":[1]}`, http.StatusBadRequest},
		{"advise unknown unit", "POST", "/v1/cache/advise",
			`{"capacityBytes":100,"resident":[{"unit":123456789}]}`, http.StatusBadRequest},
		{"unknown route", "GET", "/v1/nope", "", http.StatusNotFound},
		{"wrong method", "GET", "/v1/jobs", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(s, c.method, c.path, c.body)
			if w.Code != c.want {
				t.Errorf("%s %s: %d, want %d (body %s)", c.method, c.path, w.Code, c.want, w.Body)
			}
		})
	}
}

func TestBatchLimit(t *testing.T) {
	s := New(Config{MaxBatchJobs: 2})
	w := do(s, "POST", "/v1/jobs/batch", `{"jobs":[{"files":[1]},{"files":[2]},{"files":[3]}]}`)
	if w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400", w.Code)
	}
}

func TestBodyLimit(t *testing.T) {
	s := New(Config{MaxBodyBytes: 64})
	big := `{"files":[` + strings.Repeat("1,", 1000) + `1]}`
	w := do(s, "POST", "/v1/jobs", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", w.Code)
	}
}

// TestConcurrentObserveAndQuery hammers the handler from many goroutines —
// meaningful under -race — and checks the final partition against batch
// identification.
func TestConcurrentObserveAndQuery(t *testing.T) {
	s, tr := testServer(t)
	n := 400
	if n > len(tr.Jobs) {
		n = len(tr.Jobs)
	}
	workers := 8
	var next int64
	var mu sync.Mutex
	next = 0
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		i := int(next)
		next++
		return i
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				body, _ := json.Marshal(JobBody{Files: tr.Jobs[i].Files})
				if w := do(s, "POST", "/v1/jobs", string(body)); w.Code != http.StatusOK {
					t.Errorf("observe: %d %s", w.Code, w.Body)
					return
				}
				// Interleave reads with writes.
				if i%7 == 0 {
					do(s, "GET", "/v1/partition/summary", "")
				}
				if i%11 == 0 {
					do(s, "GET", "/metrics", "")
				}
			}
		}()
	}
	wg.Wait()

	want := core.Identify(tr.WithJobs(jobIDs(n)))
	if !s.Monitor().Snapshot().Equal(want) {
		t.Error("concurrent ingestion diverged from batch identification")
	}
}

func jobIDs(n int) []trace.JobID {
	ids := make([]trace.JobID, n)
	for i := range ids {
		ids[i] = trace.JobID(i)
	}
	return ids
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	if w := do(s, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz: %d", w.Code)
	}
}

func TestPprofMounted(t *testing.T) {
	s := New(Config{EnablePprof: true})
	if w := do(s, "GET", "/debug/pprof/cmdline", ""); w.Code != http.StatusOK {
		t.Errorf("pprof cmdline: %d", w.Code)
	}
	off := New(Config{})
	if w := do(off, "GET", "/debug/pprof/cmdline", ""); w.Code == http.StatusOK {
		t.Errorf("pprof served while disabled")
	}
}
