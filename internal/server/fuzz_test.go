package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"filecule/internal/cache"
	"filecule/internal/trace"
)

// fuzzCatalog is a small fixed catalog so advise and observe validation
// paths both run.
func fuzzCatalog() []trace.File {
	files := make([]trace.File, 16)
	for i := range files {
		files[i] = trace.File{ID: trace.FileID(i), Name: "f", Size: int64(i+1) << 20}
	}
	return files
}

// FuzzServerHandlers throws arbitrary bodies and paths at every mutating
// and parameterized endpoint. The contract under fuzz: handlers never
// panic and never answer 5xx — malformed input is always a 4xx, valid
// input a 2xx.
func FuzzServerHandlers(f *testing.F) {
	f.Add(uint8(0), `{"files":[1,2,3]}`)
	f.Add(uint8(1), `{"jobs":[{"files":[1]},{"files":[2,3]}]}`)
	f.Add(uint8(2), `{"capacityBytes":1048576,"files":[1],"resident":[{"unit":0,"lastAccess":3}]}`)
	f.Add(uint8(3), `7`)
	f.Add(uint8(0), `{"files":`)
	f.Add(uint8(0), `{"files":[999999999999]}`)
	f.Add(uint8(1), `{"jobs":[{"files":[-5]}]}`)
	f.Add(uint8(2), `{"capacityBytes":-1}`)
	f.Add(uint8(2), `{"capacityBytes":100,"resident":[{"unit":0},{"unit":0}]}`)
	f.Add(uint8(3), `-1`)
	f.Add(uint8(3), `99999999999999999999`)
	f.Add(uint8(0), strings.Repeat(`[`, 10000))

	f.Fuzz(func(t *testing.T, which uint8, body string) {
		s := New(Config{Catalog: fuzzCatalog(), MaxBodyBytes: 1 << 20})
		// Give the partition some state so query paths have content.
		s.Monitor().Observe([]trace.FileID{1, 2})
		s.Monitor().Observe([]trace.FileID{2, 3})

		var r *http.Request
		switch which % 4 {
		case 0:
			r = httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		case 1:
			r = httptest.NewRequest("POST", "/v1/jobs/batch", strings.NewReader(body))
		case 2:
			r = httptest.NewRequest("POST", "/v1/cache/advise", strings.NewReader(body))
		case 3:
			// The body fuzzes the path parameter. NewRequest panics on
			// unescapable targets, so sanitize into a path segment.
			seg := sanitizePathSegment(body)
			r = httptest.NewRequest("GET", "/v1/filecules/"+seg, nil)
		}
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code >= 500 {
			t.Fatalf("handler answered %d for %q body %q: %s", w.Code, r.URL, body, w.Body)
		}

		// Read-only endpoints must stay healthy regardless of what the
		// mutating ones ingested.
		for _, path := range []string{"/v1/partition", "/v1/partition/summary", "/metrics", "/healthz"} {
			wr := httptest.NewRecorder()
			s.Handler().ServeHTTP(wr, httptest.NewRequest("GET", path, nil))
			if wr.Code != http.StatusOK {
				t.Fatalf("GET %s: %d after fuzz input", path, wr.Code)
			}
		}
	})
}

// sanitizePathSegment keeps the fuzzed string printable and slash-free so
// it forms one path segment (the request constructor itself rejects raw
// control bytes; the server must still handle whatever gets through).
func sanitizePathSegment(s string) string {
	if len(s) > 64 {
		s = s[:64]
	}
	var b strings.Builder
	for _, c := range s {
		if c > 0x20 && c < 0x7f && c != '/' && c != '?' && c != '#' && c != '%' {
			b.WriteRune(c)
		}
	}
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

// FuzzAdviseConsistency cross-checks the advise endpoint's arithmetic on
// randomized inputs: the reported byte total must equal the sum of the
// plan's parts, and no advised unit may exceed the declared capacity.
func FuzzAdviseConsistency(f *testing.F) {
	f.Add(int64(1<<20), uint8(3), uint8(1))
	f.Add(int64(100), uint8(7), uint8(0))
	f.Add(int64(1<<40), uint8(15), uint8(4))
	f.Fuzz(func(t *testing.T, capacity int64, fileMask, nResident uint8) {
		if capacity <= 0 {
			capacity = 1
		}
		s := New(Config{Catalog: fuzzCatalog()})
		s.Monitor().Observe([]trace.FileID{1, 2})
		s.Monitor().Observe([]trace.FileID{3, 4, 5})
		numFilecules := s.Monitor().Snapshot().NumFilecules()

		var files []trace.FileID
		for i := 0; i < 8; i++ {
			if fileMask&(1<<i) != 0 {
				files = append(files, trace.FileID(i))
			}
		}
		body := AdviseBody{CapacityBytes: capacity, Files: files}
		for i := 0; i < int(nResident)%4 && i < numFilecules; i++ {
			body.Resident = append(body.Resident, ResidentBody{
				Unit: cache.UnitID(i), LastAccess: int64(i),
			})
		}
		bb, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		w := do(s, "POST", "/v1/cache/advise", string(bb))
		if w.Code >= 500 {
			t.Fatalf("5xx: %s", w.Body)
		}
		if w.Code != http.StatusOK {
			return
		}
		var adv AdviceResult
		if err := json.Unmarshal(w.Body.Bytes(), &adv); err != nil {
			t.Fatal(err)
		}
		var load int64
		for _, lu := range adv.Load {
			load += lu.Bytes
			if lu.Bytes > capacity {
				t.Fatalf("advised loading unit %d of %d bytes into %d capacity", lu.Unit, lu.Bytes, capacity)
			}
		}
		if load != adv.BytesToLoad {
			t.Fatalf("BytesToLoad %d != sum %d", adv.BytesToLoad, load)
		}
	})
}
