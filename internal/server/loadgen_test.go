package server

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"filecule/internal/core"
	"filecule/internal/synth"
	"filecule/internal/trace"
)

// TestLoadGenReplay is the in-repo miniature of `filecule-serve -selftest`:
// boot the server on a loopback port, replay a synthetic trace from
// concurrent clients, and require a partition byte-identical to batch
// identification plus live metrics. Run under -race this also exercises the
// full network path concurrently.
func TestLoadGenReplay(t *testing.T) {
	tr, err := synth.Generate(synth.DZero(5, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Catalog: tr.Files, ShutdownGrace: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndRun(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready

	gen := &LoadGen{BaseURL: "http://" + addr.String(), Clients: 4, BatchSize: 3}
	rep, err := gen.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Jobs != len(tr.Jobs) {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Latency.N == 0 || rep.JobsPerSec() <= 0 {
		t.Errorf("report lacks latency/throughput: %+v", rep)
	}
	if !strings.Contains(rep.String(), "jobs/s") {
		t.Errorf("report string = %q", rep.String())
	}

	want, err := PartitionJSON(core.Identify(tr), int64(len(tr.Jobs)), &trace.Trace{Files: tr.Files})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(do(s, "GET", "/v1/partition", "").Body.String())
	if got != string(want) {
		t.Error("served partition differs from batch identification after concurrent replay")
	}

	if s.Metrics().Requests() == 0 {
		t.Error("no requests recorded in metrics")
	}

	// Graceful shutdown must drain and return nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}

func TestLoadGenReportsServerErrors(t *testing.T) {
	tr, err := synth.Generate(synth.DZero(5, 0.003))
	if err != nil {
		t.Fatal(err)
	}
	// A server with an empty catalog except one file rejects most jobs.
	s := New(Config{Catalog: tr.Files[:1]})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	go func() { _ = s.ListenAndRun(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready

	gen := &LoadGen{BaseURL: "http://" + addr.String(), Clients: 2}
	rep, err := gen.Replay(tr)
	if err == nil {
		t.Fatalf("expected replay errors, got %+v", rep)
	}
	if rep.Errors == 0 {
		t.Errorf("report shows no errors: %+v", rep)
	}
}
