package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"filecule/internal/core"
	"filecule/internal/durable"
	"filecule/internal/synth"
	"filecule/internal/trace"
)

// durableServer returns a server whose observes flow through the durability
// layer in strict-commit mode, plus the backing trace and engine.
func durableServer(tb testing.TB, dir string) (*Server, *trace.Trace, *durable.Engine) {
	tb.Helper()
	t, err := synth.Generate(synth.DZero(11, 0.003))
	if err != nil {
		tb.Fatal(err)
	}
	d, err := durable.Open(durable.Options{Dir: dir, SyncCommit: true})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { d.Close() })
	return New(Config{Catalog: t.Files, Durable: d}), t, d
}

// TestDurableObserveSurvivesRestart drives observes through the HTTP layer,
// checkpoints through the admin endpoint, and checks a fresh engine opened
// on the same directory serves the identical partition.
func TestDurableObserveSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, tr, d := durableServer(t, dir)

	half := len(tr.Jobs) / 2
	for _, j := range tr.Jobs[:half] {
		body, err := json.Marshal(JobBody{Files: j.Files})
		if err != nil {
			t.Fatal(err)
		}
		if w := do(s, "POST", "/v1/jobs", string(body)); w.Code != http.StatusOK {
			t.Fatalf("observe: %d %s", w.Code, w.Body)
		}
	}

	w := do(s, "POST", "/v1/admin/checkpoint", "")
	if w.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", w.Code, w.Body)
	}
	var cr CheckpointResult
	if err := json.Unmarshal(w.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Observed != int64(half) || cr.Epoch == 0 {
		t.Errorf("CheckpointResult = %+v, want observed %d at epoch >= 1", cr, half)
	}

	wantPart := do(s, "GET", "/v1/partition", "").Body.String()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Recovery().Observed; got != int64(half) {
		t.Fatalf("recovered %d jobs, want %d", got, half)
	}
	s2 := New(Config{Catalog: tr.Files, Durable: d2})
	if got := do(s2, "GET", "/v1/partition", "").Body.String(); got != wantPart {
		t.Errorf("recovered partition differs from pre-restart partition (%d vs %d bytes)", len(got), len(wantPart))
	}

	// And it matches batch identification over the observed prefix.
	ref := core.Identify(&trace.Trace{Files: tr.Files, Jobs: tr.Jobs[:half]})
	if !ref.Equal(d2.Core().Snapshot()) {
		t.Error("recovered engine partition differs from core.Identify over observed jobs")
	}
}

// TestDurableBatchObserve checks the batch endpoint routes through the WAL.
func TestDurableBatchObserve(t *testing.T) {
	s, _, d := durableServer(t, t.TempDir())
	body := `{"jobs":[{"files":[1,2,3]},{"files":[2,3]},{"files":[7]}]}`
	if w := do(s, "POST", "/v1/jobs/batch", body); w.Code != http.StatusOK {
		t.Fatalf("batch observe: %d %s", w.Code, w.Body)
	}
	if got := d.Stats().WALSynced; got != 3 {
		t.Errorf("WALSynced = %d, want 3 (strict mode syncs before ack)", got)
	}
	if got := d.Core().Observed(); got != 3 {
		t.Errorf("engine observed %d, want 3", got)
	}
}

// TestDurableMetrics checks the durability gauges appear on /metrics.
func TestDurableMetrics(t *testing.T) {
	s, _, _ := durableServer(t, t.TempDir())
	do(s, "POST", "/v1/jobs", `{"files":[1,2]}`)
	do(s, "POST", "/v1/admin/checkpoint", "")
	ms := do(s, "GET", "/metrics", "").Body.String()
	for _, needle := range []string{
		"filecule_wal_appended_jobs_total 1",
		"filecule_wal_synced_jobs_total 1",
		"filecule_state_epoch 1",
		"filecule_checkpoints_total 1",
	} {
		if !strings.Contains(ms, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
}

// TestCheckpointEndpointWithoutDurable checks the admin route is absent when
// the server runs in-memory only.
func TestCheckpointEndpointWithoutDurable(t *testing.T) {
	s, _ := testServer(t)
	if w := do(s, "POST", "/v1/admin/checkpoint", ""); w.Code == http.StatusOK {
		t.Errorf("checkpoint endpoint answered %d on an in-memory server", w.Code)
	}
}
