package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestMetricsObserveAndRender(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 10; i++ {
		m.Observe("observe", http.StatusOK, time.Duration(i+1)*time.Millisecond)
	}
	m.Observe("observe", http.StatusBadRequest, 50*time.Microsecond)
	m.Observe("advise", http.StatusOK, 2*time.Second)
	m.Observe("advise", http.StatusOK, 20*time.Second) // above the last edge

	if got := m.Requests(); got != 13 {
		t.Errorf("Requests() = %d, want 13", got)
	}

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, needle := range []string{
		`filecule_server_requests_total{route="observe",code="200"} 10`,
		`filecule_server_requests_total{route="observe",code="400"} 1`,
		`filecule_server_requests_total{route="advise",code="200"} 2`,
		`filecule_server_request_seconds_count{route="observe"} 11`,
		`filecule_server_request_seconds_bucket{route="advise",le="+Inf"} 2`,
		`filecule_server_request_seconds_quantile{route="observe",quantile="0.5"}`,
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("prometheus output missing %q\n%s", needle, out)
		}
	}

	// Median of 1..10ms and the 50µs outlier is ~5ms.
	p50 := m.Quantile("observe", 0.5)
	if p50 < 0.001 || p50 > 0.010 {
		t.Errorf("p50 = %v, want within [1ms, 10ms]", p50)
	}
	if m.Quantile("nosuch", 0.5) != 0 {
		t.Errorf("unknown route quantile should be 0")
	}
}

func TestMetricsBucketsCumulative(t *testing.T) {
	m := NewMetrics()
	m.Observe("r", 200, 300*time.Microsecond) // falls in le=0.0005
	m.Observe("r", 200, 40*time.Millisecond)  // falls in le=0.05
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, needle := range []string{
		`filecule_server_request_seconds_bucket{route="r",le="0.00025"} 0`,
		`filecule_server_request_seconds_bucket{route="r",le="0.0005"} 1`,
		`filecule_server_request_seconds_bucket{route="r",le="0.025"} 1`,
		`filecule_server_request_seconds_bucket{route="r",le="0.05"} 2`,
		`filecule_server_request_seconds_bucket{route="r",le="10"} 2`,
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("prometheus output missing %q\n%s", needle, out)
		}
	}
}

func TestMetricsSampleWindowBounded(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < maxLatencySamples+100; i++ {
		m.Observe("r", 200, time.Microsecond)
	}
	m.mu.Lock()
	n := len(m.route["r"].samples)
	m.mu.Unlock()
	if n != maxLatencySamples {
		t.Errorf("sample window = %d, want %d", n, maxLatencySamples)
	}
}
