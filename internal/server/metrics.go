package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"filecule/internal/stats"
)

// latencyEdges are the fixed histogram bucket upper bounds (seconds) used
// for the Prometheus-style exposition. Log-spaced from 100µs to 10s, which
// brackets everything from an in-memory observe to a full-trace snapshot.
var latencyEdges = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// maxLatencySamples bounds the per-route sample window kept for quantile
// estimation. The window holds the most recent samples (ring buffer), so
// quantiles track current behavior rather than all-time history.
const maxLatencySamples = 16384

// routeMetrics accumulates counters for one route.
type routeMetrics struct {
	byCode  map[int]int64
	buckets []int64 // per-bucket counts, same index as latencyEdges
	over    int64   // samples above the last edge
	sum     float64 // total seconds
	n       int64
	samples []float64 // ring buffer for quantiles
	next    int
}

// Metrics collects request counters and latency distributions per route and
// renders them in the Prometheus text exposition format. All methods are
// safe for concurrent use.
type Metrics struct {
	start time.Time
	mu    sync.Mutex
	route map[string]*routeMetrics
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), route: make(map[string]*routeMetrics)}
}

// Observe records one request on route with the given status code and
// duration.
func (m *Metrics) Observe(route string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route[route]
	if r == nil {
		r = &routeMetrics{
			byCode:  make(map[int]int64),
			buckets: make([]int64, len(latencyEdges)),
		}
		m.route[route] = r
	}
	r.byCode[code]++
	r.sum += sec
	r.n++
	for i, edge := range latencyEdges {
		if sec <= edge {
			r.buckets[i]++
			break
		}
		if i == len(latencyEdges)-1 {
			r.over++
		}
	}
	if len(r.samples) < maxLatencySamples {
		r.samples = append(r.samples, sec)
	} else {
		r.samples[r.next] = sec
		r.next = (r.next + 1) % maxLatencySamples
	}
}

// Requests returns the total request count across all routes and codes.
func (m *Metrics) Requests() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, r := range m.route {
		n += r.n
	}
	return n
}

// Quantile returns the q-th latency quantile (seconds) over the route's
// recent sample window, or 0 if the route has no samples.
func (m *Metrics) Quantile(route string, q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route[route]
	if r == nil || len(r.samples) == 0 {
		return 0
	}
	return stats.Quantile(r.samples, q)
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach through this wrapper to the
// connection's deadline controls; without it SetReadDeadline silently
// degrades to ErrNotSupported and the per-body deadline never arms.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps h so every request is timed and counted under route.
func (m *Metrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(rec, r)
		m.Observe(route, rec.code, time.Since(t0))
	}
}

// WritePrometheus renders all counters in the Prometheus text format:
// request totals by route and code, latency histograms with cumulative
// buckets, and windowed quantile gauges computed via internal/stats.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE filecule_server_uptime_seconds gauge\n")
	fmt.Fprintf(w, "filecule_server_uptime_seconds %g\n", time.Since(m.start).Seconds())

	routes := make([]string, 0, len(m.route))
	for name := range m.route {
		routes = append(routes, name)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# TYPE filecule_server_requests_total counter\n")
	for _, name := range routes {
		r := m.route[name]
		codes := make([]int, 0, len(r.byCode))
		for c := range r.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "filecule_server_requests_total{route=%q,code=\"%d\"} %d\n", name, c, r.byCode[c])
		}
	}

	fmt.Fprintf(w, "# TYPE filecule_server_request_seconds histogram\n")
	for _, name := range routes {
		r := m.route[name]
		var cum int64
		for i, edge := range latencyEdges {
			cum += r.buckets[i]
			fmt.Fprintf(w, "filecule_server_request_seconds_bucket{route=%q,le=\"%g\"} %d\n", name, edge, cum)
		}
		fmt.Fprintf(w, "filecule_server_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, r.n)
		fmt.Fprintf(w, "filecule_server_request_seconds_sum{route=%q} %g\n", name, r.sum)
		fmt.Fprintf(w, "filecule_server_request_seconds_count{route=%q} %d\n", name, r.n)
	}

	fmt.Fprintf(w, "# TYPE filecule_server_request_seconds_quantile gauge\n")
	for _, name := range routes {
		r := m.route[name]
		if len(r.samples) == 0 {
			continue
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "filecule_server_request_seconds_quantile{route=%q,quantile=\"%g\"} %g\n",
				name, q, stats.Quantile(r.samples, q))
		}
	}
}
