package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"filecule/internal/stats"
	"filecule/internal/synth"
	"filecule/internal/trace"
	"filecule/internal/wire"
)

// LoadGen replays a trace's jobs against a running server from many
// concurrent clients — the closed-loop generator behind the -selftest flag
// and a reusable benchmarking harness. Each client loops: take the next
// unclaimed job (or batch of jobs), POST it, measure the round trip.
type LoadGen struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// WireAddr, when non-empty, replays over the binary wire protocol
	// (filecule-wire/v1) against this TCP address instead of HTTP: each
	// client holds one persistent connection and does one synchronous
	// observe or batch round trip per claim. BaseURL is ignored.
	WireAddr string
	// Clients is the number of concurrent submitters; <= 0 means 8.
	Clients int
	// BatchSize groups jobs per request; <= 1 posts one job per request.
	BatchSize int
	// Timeout bounds each HTTP request or wire round trip; zero means 30s.
	Timeout time.Duration
	// Shape, when not ShapeNone, paces submission to the RPS schedule
	// (ramp/sweep/burst, as in the invitro trace synthesizer): the k'th
	// claimed job is not posted before replay-start + schedule-offset(k),
	// so offered load follows the profile instead of running closed-loop
	// flat out.
	Shape synth.Shape
}

// LoadReport summarizes one replay.
type LoadReport struct {
	Jobs     int           // jobs replayed
	Requests int64         // HTTP requests issued
	Errors   int64         // transport errors or non-2xx responses
	Duration time.Duration // wall-clock replay time
	// Latency summarizes per-request round-trip seconds.
	Latency stats.Summary
}

// JobsPerSec returns the replay throughput.
func (r *LoadReport) JobsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Jobs) / r.Duration.Seconds()
}

// String renders the report for terminal output.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"replayed %d jobs in %d requests over %v (%.0f jobs/s, %d errors)\n"+
			"latency: p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms",
		r.Jobs, r.Requests, r.Duration.Round(time.Millisecond), r.JobsPerSec(), r.Errors,
		r.Latency.Median*1e3, r.Latency.P90*1e3, r.Latency.P99*1e3, r.Latency.Max*1e3)
}

// Replay posts every job of t (in ID order of claim) and blocks until all
// are acknowledged. It is safe to call on a live server; jobs interleave
// with other traffic.
func (g *LoadGen) Replay(t *trace.Trace) (*LoadReport, error) {
	return g.ReplaySource(trace.NewTraceSource(t))
}

// ReplaySource drains a job stream against the server: clients claim batches
// from the source under a mutex (copying each job out of the source's reused
// buffers), then post them concurrently. Memory stays bounded by clients ×
// batch jobs however long the stream is, so arbitrarily large binary traces
// replay without ever being materialized.
func (g *LoadGen) ReplaySource(src trace.Source) (*LoadReport, error) {
	clients := g.Clients
	if clients <= 0 {
		clients = 8
	}
	batch := g.BatchSize
	if batch < 1 {
		batch = 1
	}
	timeout := g.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	hc := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        clients * 2,
			MaxIdleConnsPerHost: clients * 2,
		},
	}
	if err := g.Shape.Validate(); err != nil {
		return nil, err
	}
	pacer := synth.NewPacer(g.Shape)

	var mu sync.Mutex // guards src and claimed
	var srcErr error
	var claimed int64
	// pull claims up to batch jobs, returning the copies, the stream offset
	// of the first one, and its not-before submission offset under the RPS
	// schedule (the pacer advances once per claimed job, serialized by the
	// same mutex that orders claims).
	pull := func(buf []trace.Job) ([]trace.Job, int64, time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		buf = buf[:0]
		lo := claimed
		notBefore := time.Duration(-1)
		for len(buf) < batch && srcErr == nil {
			j, err := src.Next()
			if err != nil {
				srcErr = err
				break
			}
			if off := pacer.Next(); notBefore < 0 {
				notBefore = off
			}
			buf = append(buf, trace.CloneJob(j))
		}
		claimed += int64(len(buf))
		return buf, lo, notBefore
	}

	var requests, errs int64
	latencies := make([][]float64, clients)
	var firstErr error
	var errOnce sync.Once

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var wc *wire.Client
			if g.WireAddr != "" {
				var err error
				wc, err = wire.Dial(g.WireAddr, timeout)
				if err != nil {
					atomic.AddInt64(&errs, 1)
					errOnce.Do(func() { firstErr = fmt.Errorf("dial wire %s: %w", g.WireAddr, err) })
					return
				}
				defer wc.Close()
			}
			buf := make([]trace.Job, 0, batch)
			for {
				var lo int64
				var notBefore time.Duration
				buf, lo, notBefore = pull(buf)
				if len(buf) == 0 {
					return
				}
				if g.Shape.Mode != synth.ShapeNone {
					time.Sleep(time.Until(start.Add(notBefore)))
				}
				hi := lo + int64(len(buf))
				var err error
				t0 := time.Now()
				if wc != nil {
					err = g.postWire(wc, buf)
					atomic.AddInt64(&requests, 1)
				} else {
					err = g.postHTTP(hc, buf, &requests)
				}
				if err != nil {
					atomic.AddInt64(&errs, 1)
					errOnce.Do(func() {
						firstErr = fmt.Errorf("jobs %d..%d: %w", lo, hi-1, err)
					})
					continue
				}
				latencies[c] = append(latencies[c], time.Since(t0).Seconds())
			}
		}(c)
	}
	wg.Wait()

	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	rep := &LoadReport{
		Jobs:     int(claimed),
		Requests: requests,
		Errors:   errs,
		Duration: time.Since(start),
		Latency:  stats.Summarize(all),
	}
	if srcErr != nil && srcErr != io.EOF {
		return rep, fmt.Errorf("loadgen: reading job stream: %w", srcErr)
	}
	if errs > 0 {
		return rep, fmt.Errorf("loadgen: %d of %d requests failed (first: %v)", errs, requests, firstErr)
	}
	return rep, nil
}

// postHTTP submits one claim of jobs over HTTP/JSON.
func (g *LoadGen) postHTTP(hc *http.Client, buf []trace.Job, requests *int64) error {
	url, body, err := g.encodeJobs(buf)
	if err != nil {
		return err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	atomic.AddInt64(requests, 1)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// postWire submits one claim of jobs as a single wire round trip.
func (g *LoadGen) postWire(wc *wire.Client, buf []trace.Job) error {
	if len(buf) == 1 && g.BatchSize <= 1 {
		_, err := wc.Observe(buf[0].Files)
		return err
	}
	jobs := make([][]trace.FileID, len(buf))
	for i := range buf {
		jobs[i] = buf[i].Files
	}
	_, err := wc.Batch(jobs)
	return err
}

// encodeJobs builds the request URL and JSON body for a claim of jobs.
func (g *LoadGen) encodeJobs(jobs []trace.Job) (url string, body []byte, err error) {
	if len(jobs) == 1 && g.BatchSize <= 1 {
		body, err = json.Marshal(JobBody{Files: jobs[0].Files})
		return g.BaseURL + "/v1/jobs", body, err
	}
	b := BatchBody{Jobs: make([]JobBody, len(jobs))}
	for i := range jobs {
		b.Jobs[i] = JobBody{Files: jobs[i].Files}
	}
	body, err = json.Marshal(b)
	return g.BaseURL + "/v1/jobs/batch", body, err
}
