// Package server exposes the filecule identification service over
// HTTP/JSON — the deployment Section 6 of the paper sketches, where job
// submissions stream past a concentration point and distributed site caches
// ask for staging advice. It wraps core.Monitor for ingestion, serves
// partition queries from cached snapshots, and computes filecule-granularity
// cache admission/eviction advice via internal/cache.
//
// Endpoints:
//
//	POST /v1/jobs              observe one job's input set
//	POST /v1/jobs/batch        observe many jobs in one request
//	GET  /v1/filecules/{file}  the filecule containing a file
//	GET  /v1/partition         the full canonical partition
//	GET  /v1/partition/summary partition shape statistics
//	POST /v1/cache/advise      admission/eviction advice for a client cache
//	POST /v1/fed/exchange      peer delta ingestion (binary, when Config.Fed)
//	GET  /v1/fed/partition     merged cross-site partition (when Config.Fed)
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              liveness probe
//	GET  /readyz               readiness probe (503 while federation degraded)
//	/debug/pprof/*             standard profiles (when Config.EnablePprof)
//
// All responses are JSON except /metrics. Invalid input is answered with a
// 4xx and a JSON {"error": ...} body; handlers never panic (fuzz-verified).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"filecule/internal/cache"
	"filecule/internal/core"
	"filecule/internal/durable"
	"filecule/internal/fed"
	"filecule/internal/trace"
)

// Config parameterizes a Server. The zero value serves with no catalog
// (identification only; /v1/cache/advise is disabled) and default limits.
type Config struct {
	// Catalog is the file catalog (sizes) backing cache advice and byte
	// accounting. File IDs in requests are validated against it when
	// present; without a catalog any non-negative int32 ID is accepted
	// and advice is unavailable.
	Catalog []trace.File
	// MaxBodyBytes caps request bodies; <= 0 means 32 MiB.
	MaxBodyBytes int64
	// MaxBatchJobs caps jobs per batch request; <= 0 means 10000.
	MaxBatchJobs int
	// ReadTimeout, WriteTimeout and IdleTimeout configure the underlying
	// http.Server in Run; zero values mean 30s, 60s and 120s.
	ReadTimeout, WriteTimeout, IdleTimeout time.Duration
	// ShutdownGrace bounds request draining on shutdown; zero means 10s.
	ShutdownGrace time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// EngineShards sets the identification engine's lock-stripe count;
	// <= 0 selects core.DefaultEngineShards. Exposed as the
	// filecule_engine_shards gauge so observe-path regressions can be
	// correlated with the shard layout in production.
	EngineShards int
	// Durable, when set, makes observes WAL-ahead through the durability
	// layer (its engine becomes the serving engine, so recovered state is
	// what the server answers from) and mounts POST /v1/admin/checkpoint.
	// A WAL append failure answers 500 and the job is not applied.
	Durable *durable.Engine
	// Fed, when set, federates this server's engine with peer sites: New
	// builds a fed.Node over the serving engine (Fed.Self is overridden,
	// Fed.Transport defaults to fed.NewHTTPTransport, Fed.MaxFiles defaults
	// to the catalog size when a catalog is present), mounts the exchange
	// and merged-partition endpoints, and Run drives the per-peer exchange
	// loops for the Server's lifetime.
	Fed *fed.Config
	// BodyReadTimeout bounds reading any single request body via a
	// per-request connection read deadline, independent of the server-wide
	// ReadTimeout; <= 0 means 30s. This is the slowloris guard: a client
	// trickling body bytes is cut off after this long, not after
	// ReadTimeout (which callers may set generously for large batches).
	BodyReadTimeout time.Duration
}

func (c *Config) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 32 << 20
}

func (c *Config) maxBatch() int {
	if c.MaxBatchJobs > 0 {
		return c.MaxBatchJobs
	}
	return 10000
}

func orDefault(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}

// Server is the HTTP serving layer. Create with New; it is safe for
// concurrent use by any number of connections.
type Server struct {
	cfg     Config
	monitor *core.Monitor
	metrics *Metrics
	mux     *http.ServeMux
	// catTrace wraps the catalog for granularity construction.
	catTrace *trace.Trace

	// fedNode is the federation node when Config.Fed is set; fedErr holds a
	// construction failure, surfaced by Run so New keeps its signature.
	fedNode *fed.Node
	fedErr  error

	// granMu guards the advice granularity, rebuilt only when the
	// monitor snapshot changes (detected by pointer identity, which
	// Monitor.Snapshot guarantees between observations).
	granMu   sync.Mutex
	granSnap *core.Partition
	gran     *cache.FileculeGranularity
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	monitor := core.NewMonitorShards(cfg.EngineShards)
	if cfg.Durable != nil {
		monitor = core.NewMonitorEngine(cfg.Durable.Core())
	}
	s := &Server{
		cfg:     cfg,
		monitor: monitor,
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	if len(cfg.Catalog) > 0 {
		s.catTrace = &trace.Trace{Files: cfg.Catalog}
	}
	s.mux.HandleFunc("POST /v1/jobs", s.metrics.instrument("observe", s.handleObserve))
	s.mux.HandleFunc("POST /v1/jobs/batch", s.metrics.instrument("observe_batch", s.handleObserveBatch))
	s.mux.HandleFunc("GET /v1/filecules/{file}", s.metrics.instrument("filecule", s.handleFilecule))
	s.mux.HandleFunc("GET /v1/partition", s.metrics.instrument("partition", s.handlePartition))
	s.mux.HandleFunc("GET /v1/partition/summary", s.metrics.instrument("summary", s.handleSummary))
	s.mux.HandleFunc("POST /v1/cache/advise", s.metrics.instrument("advise", s.handleAdvise))
	if cfg.Durable != nil {
		s.mux.HandleFunc("POST /v1/admin/checkpoint", s.metrics.instrument("checkpoint", s.handleCheckpoint))
	}
	if cfg.Fed != nil {
		fc := *cfg.Fed
		fc.Self = s.monitor.Engine()
		if fc.MaxFiles == 0 && len(cfg.Catalog) > 0 {
			// Bound incoming deltas by the catalog, mirroring checkFiles on
			// the observe path: remote state may never reference a file the
			// local catalog cannot resolve.
			fc.MaxFiles = len(cfg.Catalog)
		}
		if fc.Transport == nil {
			fc.Transport = fed.NewHTTPTransport()
		}
		node, err := fed.NewNode(fc)
		if err != nil {
			s.fedErr = fmt.Errorf("server: federation: %w", err)
		} else {
			s.fedNode = node
			s.mux.HandleFunc("POST "+fed.ExchangePath, s.metrics.instrument("fed_exchange", s.handleFedExchange))
			s.mux.HandleFunc("GET /v1/fed/partition", s.metrics.instrument("fed_partition", s.handleFedPartition))
		}
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Monitor exposes the underlying identification monitor.
func (s *Server) Monitor() *core.Monitor { return s.monitor }

// Metrics exposes the request metrics collector.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Fed exposes the federation node, or nil when federation is off.
func (s *Server) Fed() *fed.Node { return s.fedNode }

// Run serves on l until ctx is cancelled, then drains in-flight requests
// for at most Config.ShutdownGrace before returning. It returns nil on a
// clean shutdown.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	if s.fedErr != nil {
		l.Close()
		return s.fedErr
	}
	if s.fedNode != nil {
		s.fedNode.Start()
		defer s.fedNode.Stop()
	}
	hs := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  orDefault(s.cfg.ReadTimeout, 30*time.Second),
		WriteTimeout: orDefault(s.cfg.WriteTimeout, 60*time.Second),
		IdleTimeout:  orDefault(s.cfg.IdleTimeout, 120*time.Second),
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), orDefault(s.cfg.ShutdownGrace, 10*time.Second))
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
		return nil
	}
}

// ListenAndRun listens on addr and calls Run. ready, if non-nil, receives
// the bound address once listening (useful with ":0").
func (s *Server) ListenAndRun(ctx context.Context, addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- l.Addr()
	}
	return s.Run(ctx, l)
}

// --- request/response bodies ---

// JobBody is the POST /v1/jobs request payload.
type JobBody struct {
	Files []trace.FileID `json:"files"`
}

// BatchBody is the POST /v1/jobs/batch request payload.
type BatchBody struct {
	Jobs []JobBody `json:"jobs"`
}

// ObserveResult reports ingestion progress.
type ObserveResult struct {
	Observed  int64 `json:"observed"`
	Filecules int   `json:"filecules"`
}

// FileculeBody describes one filecule in responses.
type FileculeBody struct {
	ID       int            `json:"id"`
	Files    []trace.FileID `json:"files"`
	Requests int            `json:"requests"`
	Bytes    int64          `json:"bytes,omitempty"`
}

// PartitionBody is the full-partition response.
type PartitionBody struct {
	Observed  int64          `json:"observed"`
	Filecules []FileculeBody `json:"filecules"`
}

// SummaryBody is the partition-summary response.
type SummaryBody struct {
	Observed          int64   `json:"observed"`
	Filecules         int     `json:"filecules"`
	Files             int     `json:"files"`
	Monatomic         int     `json:"monatomic"`
	MeanFilesPerGroup float64 `json:"meanFilesPerFilecule"`
	LargestFiles      int     `json:"largestFilecule"`
	CoveredBytes      int64   `json:"coveredBytes,omitempty"`
}

// AdviseBody is the POST /v1/cache/advise request payload.
type AdviseBody struct {
	CapacityBytes int64          `json:"capacityBytes"`
	Files         []trace.FileID `json:"files"`
	Resident      []ResidentBody `json:"resident"`
}

// ResidentBody is one resident unit in an advise request.
type ResidentBody struct {
	Unit       cache.UnitID `json:"unit"`
	LastAccess int64        `json:"lastAccess"`
}

// AdviceResult is the advise response.
type AdviceResult struct {
	Hits         []cache.UnitID `json:"hits,omitempty"`
	Load         []LoadBody     `json:"load,omitempty"`
	Evict        []cache.UnitID `json:"evict,omitempty"`
	Bypassed     []trace.FileID `json:"bypassed,omitempty"`
	BytesToLoad  int64          `json:"bytesToLoad"`
	BytesToEvict int64          `json:"bytesToEvict"`
}

// LoadBody is one unit to fetch.
type LoadBody struct {
	Unit  cache.UnitID   `json:"unit"`
	Files []trace.FileID `json:"files"`
	Bytes int64          `json:"bytes"`
}

type errorBody struct {
	Error string `json:"error"`
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// armBodyDeadline sets a connection read deadline covering one request
// body, so a client trickling bytes cannot pin a handler goroutine past
// Config.BodyReadTimeout. The returned func clears the deadline and must
// be called only after the body was consumed successfully: on a failed
// read the deadline must stay armed, because net/http's post-handler
// body drain would otherwise block unboundedly on the same stalled
// connection before flushing the error response. Deadline errors are
// ignored: httptest recorders don't support deadlines
// (http.ErrNotSupported), and the server-wide ReadTimeout still applies
// regardless.
func (s *Server) armBodyDeadline(w http.ResponseWriter) func() {
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Now().Add(orDefault(s.cfg.BodyReadTimeout, 30*time.Second)))
	return func() { _ = rc.SetReadDeadline(time.Time{}) }
}

// bodyReadError maps a body-read failure to a client-appropriate status.
func writeBodyReadError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
	case errors.Is(err, os.ErrDeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, "reading body: %v", err)
	default:
		writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
	}
}

// decodeBody parses the JSON request body into v, enforcing the size cap
// and the per-request body read deadline. It reports a client-appropriate
// status code on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	clearDeadline := s.armBodyDeadline(w)
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeBodyReadError(w, err)
		return false
	}
	// Trailing garbage after the JSON value is a client error.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	clearDeadline()
	return true
}

// checkFiles validates a job's file IDs against the catalog.
func (s *Server) checkFiles(files []trace.FileID) error {
	for _, f := range files {
		if f < 0 {
			return fmt.Errorf("negative file ID %d", f)
		}
		if s.catTrace != nil && int(f) >= len(s.catTrace.Files) {
			return fmt.Errorf("file ID %d outside catalog of %d files", f, len(s.catTrace.Files))
		}
	}
	return nil
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var body JobBody
	if !s.decodeBody(w, r, &body) {
		return
	}
	if err := s.checkFiles(body.Files); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.Durable != nil {
		if err := s.cfg.Durable.Observe(body.Files); err != nil {
			writeError(w, http.StatusInternalServerError, "wal append: %v", err)
			return
		}
	} else {
		s.monitor.Observe(body.Files)
	}
	writeJSON(w, http.StatusOK, ObserveResult{
		Observed:  s.monitor.Observed(),
		Filecules: s.monitor.NumFilecules(),
	})
}

func (s *Server) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	var body BatchBody
	if !s.decodeBody(w, r, &body) {
		return
	}
	if len(body.Jobs) > s.cfg.maxBatch() {
		writeError(w, http.StatusBadRequest, "batch of %d jobs exceeds limit %d", len(body.Jobs), s.cfg.maxBatch())
		return
	}
	jobs := make([][]trace.FileID, len(body.Jobs))
	for i, j := range body.Jobs {
		if err := s.checkFiles(j.Files); err != nil {
			writeError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		jobs[i] = j.Files
	}
	if s.cfg.Durable != nil {
		if err := s.cfg.Durable.ObserveBatch(jobs); err != nil {
			writeError(w, http.StatusInternalServerError, "wal append: %v", err)
			return
		}
	} else {
		s.monitor.ObserveBatch(jobs)
	}
	writeJSON(w, http.StatusOK, ObserveResult{
		Observed:  s.monitor.Observed(),
		Filecules: s.monitor.NumFilecules(),
	})
}

// CheckpointResult is the POST /v1/admin/checkpoint response.
type CheckpointResult struct {
	Epoch    uint64 `json:"epoch"`
	Observed int64  `json:"observed"`
	Groups   int    `json:"groups"`
	Reused   int    `json:"reused"`
	Bytes    int64  `json:"bytes"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.cfg.Durable.Checkpoint(); err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	st := s.cfg.Durable.Stats()
	writeJSON(w, http.StatusOK, CheckpointResult{
		Epoch:    st.Epoch,
		Observed: s.monitor.Observed(),
		Groups:   st.LastGroups,
		Reused:   st.LastReused,
		Bytes:    st.LastBytes,
	})
}

// handleFedExchange ingests one peer's signature-table delta. The body is
// binary (filecule-fed/v1 chunk framing), not JSON; the response is the
// binary ack naming the version now held for the sending site.
func (s *Server) handleFedExchange(w http.ResponseWriter, r *http.Request) {
	clearDeadline := s.armBodyDeadline(w)
	// The cap is the wire format's own delta ceiling, not the JSON-API body
	// limit: a full resync delta carries a peer's entire state, and capping
	// it below fed.MaxDeltaSize would 413 every exchange with that peer and
	// permanently stall convergence.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, fed.MaxDeltaSize))
	if err != nil {
		writeBodyReadError(w, err)
		return
	}
	clearDeadline()
	ackBytes, err := s.fedNode.HandleExchange(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(ackBytes)
}

// handleFedPartition serves the merged cross-site partition in the same
// canonical wire form as /v1/partition, so convergence is checkable by
// byte comparison against a single-site identification.
func (s *Server) handleFedPartition(w http.ResponseWriter, r *http.Request) {
	buf, err := PartitionJSON(s.fedNode.Merged(), s.fedNode.MergedObserved(), s.catTrace)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

// handleReady is the readiness probe. Without federation it mirrors
// /healthz. With federation it answers 503 while any peer is unhealthy:
// a degraded node still serves (its merged partition is provably a
// coarsening of the global truth, never a corruption), but load balancers
// may prefer converged replicas.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.fedNode != nil {
		if degraded, reasons := s.fedNode.Degraded(); degraded {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status":  "degraded",
				"reasons": reasons,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleFilecule(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("file"))
	if err != nil || id < 0 || id > 1<<31-1 {
		writeError(w, http.StatusBadRequest, "bad file ID %q", r.PathValue("file"))
		return
	}
	f := trace.FileID(id)
	if err := s.checkFiles([]trace.FileID{f}); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := s.monitor.Snapshot()
	fc := p.FileculeOf(f)
	if fc == nil {
		writeError(w, http.StatusNotFound, "file %d not observed in any job", f)
		return
	}
	writeJSON(w, http.StatusOK, s.fileculeBody(p, fc))
}

func (s *Server) fileculeBody(p *core.Partition, fc *core.Filecule) FileculeBody {
	b := FileculeBody{ID: fc.ID, Files: fc.Files, Requests: fc.Requests}
	if s.catTrace != nil {
		b.Bytes = p.SizeTable(s.catTrace)[fc.ID]
	}
	return b
}

// PartitionJSON encodes a partition in the service's canonical wire form:
// filecules in canonical order, each with sorted member files. Two equal
// partitions encode to identical bytes, which the self-test relies on.
func PartitionJSON(p *core.Partition, observed int64, catalog *trace.Trace) ([]byte, error) {
	body := PartitionBody{Observed: observed, Filecules: make([]FileculeBody, 0, p.NumFilecules())}
	var sizes []int64
	if catalog != nil {
		sizes = p.SizeTable(catalog)
	}
	for i := range p.Filecules {
		fc := &p.Filecules[i]
		b := FileculeBody{ID: fc.ID, Files: fc.Files, Requests: fc.Requests}
		if sizes != nil {
			b.Bytes = sizes[i]
		}
		body.Filecules = append(body.Filecules, b)
	}
	return json.Marshal(body)
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	p := s.monitor.Snapshot()
	buf, err := PartitionJSON(p, s.monitor.Observed(), s.catTrace)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	p := s.monitor.Snapshot()
	sum := SummaryBody{
		Observed:  s.monitor.Observed(),
		Filecules: p.NumFilecules(),
		Files:     p.NumFiles(),
	}
	var sizes []int64
	if s.catTrace != nil {
		sizes = p.SizeTable(s.catTrace)
	}
	for i := range p.Filecules {
		n := p.Filecules[i].NumFiles()
		if n == 1 {
			sum.Monatomic++
		}
		if n > sum.LargestFiles {
			sum.LargestFiles = n
		}
		if sizes != nil {
			sum.CoveredBytes += sizes[i]
		}
	}
	if p.NumFilecules() > 0 {
		sum.MeanFilesPerGroup = float64(p.NumFiles()) / float64(p.NumFilecules())
	}
	writeJSON(w, http.StatusOK, sum)
}

// granularity returns the advice granularity for the current snapshot,
// rebuilding it only when the snapshot changed.
func (s *Server) granularity() *cache.FileculeGranularity {
	p := s.monitor.Snapshot()
	s.granMu.Lock()
	defer s.granMu.Unlock()
	if s.granSnap != p {
		s.gran = cache.NewFileculeGranularity(s.catTrace, p)
		s.granSnap = p
	}
	return s.gran
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if s.catTrace == nil {
		writeError(w, http.StatusUnprocessableEntity, "cache advice requires a file catalog; start the server with one")
		return
	}
	var body AdviseBody
	if !s.decodeBody(w, r, &body) {
		return
	}
	if body.CapacityBytes <= 0 {
		writeError(w, http.StatusBadRequest, "capacityBytes %d must be > 0", body.CapacityBytes)
		return
	}
	if err := s.checkFiles(body.Files); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req := cache.AdviceRequest{Capacity: body.CapacityBytes, Files: body.Files}
	for _, res := range body.Resident {
		req.Resident = append(req.Resident, cache.ResidentUnit{Unit: res.Unit, LastAccess: res.LastAccess})
	}
	adv, err := cache.Advise(s.granularity(), req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := AdviceResult{
		Hits:         adv.Hits,
		Evict:        adv.Evict,
		Bypassed:     adv.Bypassed,
		BytesToLoad:  adv.BytesToLoad,
		BytesToEvict: adv.BytesToEvict,
	}
	for _, lu := range adv.Load {
		out.Load = append(out.Load, LoadBody{Unit: lu.Unit, Files: lu.Files, Bytes: lu.Bytes})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
	// Application-level gauges alongside the HTTP counters.
	p := s.monitor.Snapshot()
	fmt.Fprintf(w, "# TYPE filecule_jobs_observed_total counter\n")
	fmt.Fprintf(w, "filecule_jobs_observed_total %d\n", s.monitor.Observed())
	fmt.Fprintf(w, "# TYPE filecule_partition_filecules gauge\n")
	fmt.Fprintf(w, "filecule_partition_filecules %d\n", p.NumFilecules())
	fmt.Fprintf(w, "# TYPE filecule_partition_files gauge\n")
	fmt.Fprintf(w, "filecule_partition_files %d\n", p.NumFiles())
	// Capacity gauges: how the observe path is laid out on this host, so
	// throughput regressions are diagnosable from scrapes alone.
	fmt.Fprintf(w, "# TYPE filecule_server_gomaxprocs gauge\n")
	fmt.Fprintf(w, "filecule_server_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "# TYPE filecule_engine_shards gauge\n")
	fmt.Fprintf(w, "filecule_engine_shards %d\n", s.monitor.Shards())
	fmt.Fprintf(w, "# TYPE filecule_engine_blocks gauge\n")
	fmt.Fprintf(w, "filecule_engine_blocks %d\n", s.monitor.Blocks())
	if s.cfg.Durable != nil {
		st := s.cfg.Durable.Stats()
		fmt.Fprintf(w, "# TYPE filecule_wal_appended_jobs_total counter\n")
		fmt.Fprintf(w, "filecule_wal_appended_jobs_total %d\n", st.WALAppended)
		fmt.Fprintf(w, "# TYPE filecule_wal_synced_jobs_total counter\n")
		fmt.Fprintf(w, "filecule_wal_synced_jobs_total %d\n", st.WALSynced)
		fmt.Fprintf(w, "# TYPE filecule_state_epoch gauge\n")
		fmt.Fprintf(w, "filecule_state_epoch %d\n", st.Epoch)
		fmt.Fprintf(w, "# TYPE filecule_checkpoints_total counter\n")
		fmt.Fprintf(w, "filecule_checkpoints_total %d\n", st.Checkpoints)
	}
	if s.fedNode != nil {
		s.writeFedMetrics(w)
	}
}

// writeFedMetrics emits the federation health gauges: one series per peer
// for retry/breaker state, plus node-wide degradation and site counts.
func (s *Server) writeFedMetrics(w io.Writer) {
	degraded, _ := s.fedNode.Degraded()
	fmt.Fprintf(w, "# TYPE filecule_fed_degraded gauge\n")
	fmt.Fprintf(w, "filecule_fed_degraded %d\n", boolGauge(degraded))
	fmt.Fprintf(w, "# TYPE filecule_fed_sites_known gauge\n")
	fmt.Fprintf(w, "filecule_fed_sites_known %d\n", len(s.fedNode.Sites()))
	fmt.Fprintf(w, "# TYPE filecule_fed_merged_observed gauge\n")
	fmt.Fprintf(w, "filecule_fed_merged_observed %d\n", s.fedNode.MergedObserved())

	health := s.fedNode.Health()
	perPeer := func(name, kind string, val func(h fed.PeerHealth) int64) {
		fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		for _, h := range health {
			fmt.Fprintf(w, "%s{peer=%q} %d\n", name, h.Addr, val(h))
		}
	}
	perPeer("filecule_fed_peer_healthy", "gauge", func(h fed.PeerHealth) int64 { return boolGauge(h.Healthy) })
	perPeer("filecule_fed_peer_breaker_state", "gauge", func(h fed.PeerHealth) int64 { return int64(h.BreakerState) })
	perPeer("filecule_fed_peer_consecutive_failures", "gauge", func(h fed.PeerHealth) int64 { return int64(h.ConsecutiveFailures) })
	perPeer("filecule_fed_peer_acked_version", "gauge", func(h fed.PeerHealth) int64 { return int64(h.AckedVersion) })
	perPeer("filecule_fed_peer_exchanges_total", "counter", func(h fed.PeerHealth) int64 { return h.Exchanges })
	perPeer("filecule_fed_peer_failures_total", "counter", func(h fed.PeerHealth) int64 { return h.Failures })
	perPeer("filecule_fed_peer_breaker_trips_total", "counter", func(h fed.PeerHealth) int64 { return h.BreakerTrips })
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
