package server

import (
	"context"
	"fmt"
	"net"

	"filecule/internal/cache"
	"filecule/internal/core"
	"filecule/internal/trace"
	"filecule/internal/wire"
)

// This file adapts the Server to the binary wire protocol (internal/wire),
// so one process serves both surfaces from the same monitor, durability
// layer, advice granularity and metrics. The adapter is deliberately thin:
// every decision — durable WAL-ahead observes, snapshot-keyed granularity
// caching, catalog bounds — is the same code the HTTP handlers run, which is
// what makes the two stacks differentially testable.

// wireBackend implements wire.Backend over a Server.
type wireBackend struct{ s *Server }

func (b wireBackend) Observe(files []trace.FileID) error {
	if b.s.cfg.Durable != nil {
		return b.s.cfg.Durable.Observe(files)
	}
	b.s.monitor.Observe(files)
	return nil
}

func (b wireBackend) ObserveBatch(jobs [][]trace.FileID) error {
	if b.s.cfg.Durable != nil {
		return b.s.cfg.Durable.ObserveBatch(jobs)
	}
	b.s.monitor.ObserveBatch(jobs)
	return nil
}

func (b wireBackend) Counts() (int64, int) {
	return b.s.monitor.Observed(), b.s.monitor.NumFilecules()
}

func (b wireBackend) Granularity() (cache.Granularity, error) {
	if b.s.catTrace == nil {
		return nil, fmt.Errorf("cache advice requires a file catalog; start the server with one")
	}
	return b.s.granularity(), nil
}

func (b wireBackend) PartitionState() (*core.Partition, int64, *trace.Trace) {
	return b.s.monitor.Snapshot(), b.s.monitor.Observed(), b.s.catTrace
}

// WireServer builds the binary protocol server answering from this Server's
// state, with limits mirroring the HTTP surface and requests recorded in the
// same metrics collector (routes wire_observe, wire_observe_batch,
// wire_advise, wire_partition).
func (s *Server) WireServer() *wire.Server {
	return &wire.Server{
		Backend:      wireBackend{s},
		MaxFiles:     len(s.cfg.Catalog),
		MaxBatchJobs: s.cfg.maxBatch(),
		IdleTimeout:  s.cfg.IdleTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		Metrics:      s.metrics.Observe,
	}
}

// RunWire serves filecule-wire/v1 on l until ctx is cancelled. Run it
// alongside Run to expose both surfaces from one process.
func (s *Server) RunWire(ctx context.Context, l net.Listener) error {
	return s.WireServer().Serve(ctx, l)
}

// ListenAndRunWire listens on addr and calls RunWire. ready, if non-nil,
// receives the bound address once listening (useful with ":0").
func (s *Server) ListenAndRunWire(ctx context.Context, addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- l.Addr()
	}
	return s.RunWire(ctx, l)
}
