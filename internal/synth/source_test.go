package synth

import (
	"io"
	"reflect"
	"testing"

	"filecule/internal/trace"
)

// TestSourceMatchesGenerate is the streaming generator's contract: the
// materialized stream, once sorted by start time, must be byte-identical to
// Generate on the same config — same catalogs, same file IDs, same jobs.
func TestSourceMatchesGenerate(t *testing.T) {
	for _, cfg := range []Config{DZero(1, 0.01), DZero(7, 0.005), DZero(42, 0.02)} {
		want, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		src, err := NewSource(cfg)
		if err != nil {
			t.Fatalf("NewSource: %v", err)
		}
		got, err := trace.Materialize(src)
		if err != nil {
			t.Fatalf("Materialize: %v", err)
		}
		if len(got.Jobs) != len(want.Jobs) {
			t.Fatalf("seed %d: streamed %d jobs, Generate made %d", cfg.Seed, len(got.Jobs), len(want.Jobs))
		}
		got.SortJobsByStart()
		if !reflect.DeepEqual(got.Files, want.Files) {
			t.Errorf("seed %d: file catalogs differ", cfg.Seed)
		}
		if !reflect.DeepEqual(got.Users, want.Users) || !reflect.DeepEqual(got.Sites, want.Sites) {
			t.Errorf("seed %d: user/site catalogs differ", cfg.Seed)
		}
		for i := range got.Jobs {
			if !reflect.DeepEqual(got.Jobs[i], want.Jobs[i]) {
				t.Fatalf("seed %d: job %d differs:\nstreamed  %+v\ngenerated %+v",
					cfg.Seed, i, got.Jobs[i], want.Jobs[i])
			}
		}
	}
}

// TestSourceStreamBasics pins Source mechanics: dense stream IDs, EOF
// stability, closed-source errors, and config validation.
func TestSourceStreamBasics(t *testing.T) {
	cfg := DZero(3, 0.005)
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if j.ID != trace.JobID(n) {
			t.Fatalf("job %d has stream ID %d", n, j.ID)
		}
		n++
	}
	if n == 0 {
		t.Fatal("source yielded no jobs")
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil {
		t.Fatal("Next on closed source succeeded")
	}

	bad := DZero(1, 0.01)
	bad.Scale = -1
	if _, err := NewSource(bad); err == nil {
		t.Fatal("NewSource accepted invalid config")
	}
}
