package synth

import (
	"math"
	"testing"

	"filecule/internal/core"
	"filecule/internal/stats"
	"filecule/internal/trace"
)

// testTrace generates the shared small-scale trace used by most tests.
func testTrace(tb testing.TB) *trace.Trace {
	tb.Helper()
	t, err := Generate(DZero(1, 0.02))
	if err != nil {
		tb.Fatalf("Generate: %v", err)
	}
	return t
}

func TestGenerateValidTrace(t *testing.T) {
	tr := testTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tr.Jobs) == 0 || len(tr.Files) == 0 || len(tr.Users) == 0 {
		t.Fatalf("empty trace: %d jobs %d files %d users", len(tr.Jobs), len(tr.Files), len(tr.Users))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DZero(7, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DZero(7, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) || len(a.Files) != len(b.Files) {
		t.Fatalf("sizes differ: %d/%d jobs, %d/%d files", len(a.Jobs), len(b.Jobs), len(a.Files), len(b.Files))
	}
	for i := range a.Jobs {
		ja, jb := &a.Jobs[i], &b.Jobs[i]
		if ja.User != jb.User || !ja.Start.Equal(jb.Start) || len(ja.Files) != len(jb.Files) {
			t.Fatalf("job %d differs between identically seeded runs", i)
		}
		for k := range ja.Files {
			if ja.Files[k] != jb.Files[k] {
				t.Fatalf("job %d file %d differs", i, k)
			}
		}
	}
	c, err := Generate(DZero(8, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Jobs) == len(c.Jobs)
	if same {
		diff := false
		for i := range a.Jobs {
			if len(a.Jobs[i].Files) != len(c.Jobs[i].Files) || !a.Jobs[i].Start.Equal(c.Jobs[i].Start) {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestCalibrationJobAndFileCounts(t *testing.T) {
	const scale = 0.02
	tr := testTrace(t)
	per, all := tr.SummarizeTiers()
	byTier := map[trace.Tier]trace.TierSummary{}
	for _, s := range per {
		byTier[s.Tier] = s
	}
	// Jobs per tier within 20% of scaled Table 1 (hot-filecule jobs land
	// in thumbnail, hence the tolerance).
	checks := []struct {
		tier trace.Tier
		jobs int
	}{
		{trace.TierReconstructed, 17898},
		{trace.TierRootTuple, 1307},
		{trace.TierThumbnail, 94625},
		{trace.TierOther, 120962},
	}
	for _, c := range checks {
		want := float64(c.jobs) * scale
		got := float64(byTier[c.tier].Jobs)
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("%v jobs = %v, want ~%v", c.tier, got, want)
		}
	}
	if all.Jobs != len(tr.Jobs) {
		t.Errorf("all-row jobs = %d, want %d", all.Jobs, len(tr.Jobs))
	}
	// Catalog size within 25% of scaled total files.
	wantFiles := (515677 + 60719 + 428610) * scale
	if got := float64(len(tr.Files)); math.Abs(got-wantFiles)/wantFiles > 0.25 {
		t.Errorf("files = %v, want ~%v", got, wantFiles)
	}
}

func TestCalibrationMeanFilesPerJob(t *testing.T) {
	tr := testTrace(t)
	jobs, reqs := 0, 0
	for i := range tr.Jobs {
		if tr.Jobs[i].Tier == trace.TierOther {
			continue
		}
		jobs++
		reqs += len(tr.Jobs[i].Files)
	}
	mean := float64(reqs) / float64(jobs)
	// Paper headline: 108 files per job on average. Accept 70-150.
	if mean < 70 || mean > 150 {
		t.Errorf("mean files/job = %v, want ~%d", mean, PaperMeanFilesPerJob)
	}
}

func TestCalibrationInputVolumePerJob(t *testing.T) {
	tr := testTrace(t)
	per, _ := tr.SummarizeTiers()
	want := map[trace.Tier]float64{
		trace.TierReconstructed: 36371,
		trace.TierRootTuple:     83041,
		trace.TierThumbnail:     53619,
	}
	for _, s := range per {
		w, ok := want[s.Tier]
		if !ok {
			continue
		}
		if math.Abs(s.InputPerJobMB-w)/w > 0.4 {
			t.Errorf("%v input/job = %.0f MB, want ~%.0f MB", s.Tier, s.InputPerJobMB, w)
		}
	}
}

func TestCalibrationJobDurations(t *testing.T) {
	tr := testTrace(t)
	per, _ := tr.SummarizeTiers()
	want := map[trace.Tier]float64{
		trace.TierReconstructed: 11.01,
		trace.TierRootTuple:     13.68,
		trace.TierThumbnail:     4.89,
		trace.TierOther:         7.68,
	}
	for _, s := range per {
		w := want[s.Tier]
		got := s.TimePerJob.Hours()
		if math.Abs(got-w)/w > 0.3 {
			t.Errorf("%v time/job = %.2f h, want ~%.2f h", s.Tier, got, w)
		}
	}
}

func TestDomainActivityOrdering(t *testing.T) {
	tr := testTrace(t)
	doms := tr.SummarizeDomains()
	if doms[0].Domain != ".gov" {
		t.Fatalf("most active domain = %s, want .gov", doms[0].Domain)
	}
	// .gov should dominate (>75% of jobs; paper has ~85%).
	if frac := float64(doms[0].Jobs) / float64(len(tr.Jobs)); frac < 0.75 {
		t.Errorf(".gov job share = %v, want > 0.75", frac)
	}
	// The big-4 order of Table 2 should be preserved.
	rank := map[string]int{}
	for i, d := range doms {
		rank[d.Domain] = i
	}
	if !(rank[".gov"] < rank[".de"] && rank[".de"] < rank[".uk"] && rank[".uk"] < rank[".edu"]) {
		t.Errorf("domain activity order = %v", doms)
	}
}

func TestHotFileculePlanted(t *testing.T) {
	tr := testTrace(t)
	p := core.Identify(tr)
	// Find the filecule containing the planted hot files.
	var hot *core.Filecule
	for i := range tr.Files {
		if tr.Files[i].Name == "hot-tmb-0" {
			hot = p.FileculeOf(tr.Files[i].ID)
		}
	}
	if hot == nil {
		t.Fatal("hot filecule not found")
	}
	if hot.NumFiles() != 2 {
		t.Fatalf("hot filecule has %d files, want 2 (it must not merge or split)", hot.NumFiles())
	}
	if size := p.Size(tr, hot.ID); math.Abs(float64(size)-2.2*(1<<30)) > 0.1*(1<<30) {
		t.Errorf("hot filecule size = %d, want ~2.2 GB", size)
	}
	users := core.UsersPerFilecule(tr, p)[hot.ID]
	sites := core.SitesPerFilecule(tr, p)[hot.ID]
	if users < 5 {
		t.Errorf("hot filecule users = %d, want a crowd (scaled-down 42)", users)
	}
	if sites < 3 {
		t.Errorf("hot filecule sites = %d, want several (scaled-down 6)", sites)
	}
	if hot.Requests < 10 {
		t.Errorf("hot filecule requests = %d, want many (scaled-down 634)", hot.Requests)
	}
}

func TestFileculeStructureExists(t *testing.T) {
	tr := testTrace(t)
	p := core.Identify(tr)
	if p.NumFilecules() < 100 {
		t.Fatalf("only %d filecules identified", p.NumFilecules())
	}
	// Multi-file filecules must be common (dataset-driven access), not
	// an all-singleton degenerate partition.
	multi := 0
	for i := range p.Filecules {
		if p.Filecules[i].NumFiles() > 1 {
			multi++
		}
	}
	if frac := float64(multi) / float64(p.NumFilecules()); frac < 0.2 {
		t.Errorf("multi-file filecule fraction = %v, want >= 0.2", frac)
	}
	// Mean files per filecule should be well above 1 but far below the
	// dataset mean only if heavy splitting; accept 2..30.
	mean := float64(p.NumFiles()) / float64(p.NumFilecules())
	if mean < 2 || mean > 30 {
		t.Errorf("mean files/filecule = %v, want 2..30", mean)
	}
}

func TestNonZipfPopularity(t *testing.T) {
	tr := testTrace(t)
	p := core.Identify(tr)
	fit := stats.FitZipf(core.RequestsPer(p))
	// The paper's popularity is non-Zipf with a flattened head: the head
	// exponent must be clearly shallower than a true Zipf's (>= 0.8
	// would be web-like).
	if fit.HeadAlpha > 0.8 {
		t.Errorf("head alpha = %v; expected flattened (non-Zipf) head", fit.HeadAlpha)
	}
}

func TestUsersPerFileculeShape(t *testing.T) {
	tr := testTrace(t)
	p := core.Identify(tr)
	users := core.UsersPerFilecule(tr, p)
	h := stats.NewCountHistogram(users)
	single := h.FractionAt(1)
	// Paper: ~10% of filecules have a single user; most are shared.
	if single < 0.02 || single > 0.6 {
		t.Errorf("single-user fraction = %v, want within (0.02, 0.6)", single)
	}
	if h.Max < 4 {
		t.Errorf("max users/filecule = %d, want >= 4 at small scale", h.Max)
	}
}

func TestScaleMonotone(t *testing.T) {
	small, err := Generate(DZero(3, 0.005))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(DZero(3, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Jobs) <= len(small.Jobs) || len(big.Files) <= len(small.Files) {
		t.Errorf("scaling not monotone: jobs %d->%d files %d->%d",
			len(small.Jobs), len(big.Jobs), len(small.Files), len(big.Files))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.Tiers = nil },
		func(c *Config) { c.Domains = nil },
		func(c *Config) { c.MeanFilesPerDataset = 0 },
		func(c *Config) { c.HomeRegions = 0 },
		func(c *Config) { c.HomeRegions = c.InterestRegions + 1 },
		func(c *Config) { c.SubsetProb = 1.5 },
		func(c *Config) { c.Tiers[0].MeanJobHours = 0 },
		func(c *Config) { c.Tiers[0].ActiveUserFrac = 0 },
	}
	for i, mutate := range bad {
		c := DZero(1, 0.01)
		mutate(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestGenerateWithoutHotFilecule(t *testing.T) {
	c := DZero(1, 0.01)
	c.PlantHotFilecule = false
	tr, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Files {
		if tr.Files[i].Name == "hot-tmb-0" {
			t.Fatal("hot filecule planted despite PlantHotFilecule=false")
		}
	}
}

func TestDailyActivityRampsUp(t *testing.T) {
	tr := testTrace(t)
	days := tr.Daily()
	if len(days) < 300 {
		t.Fatalf("only %d active days", len(days))
	}
	// The configured arrival profile ramps up over the trace; the last
	// third must be busier than the first third on average.
	third := len(days) / 3
	sum := func(ds []trace.DailyActivity) int {
		n := 0
		for _, d := range ds {
			n += d.Jobs
		}
		return n
	}
	early, late := sum(days[:third]), sum(days[len(days)-third:])
	if late <= early {
		t.Errorf("activity did not ramp up: early=%d late=%d", early, late)
	}
}

func TestGeneratorDistributionStability(t *testing.T) {
	// Two seeds must draw file sizes from the same underlying per-tier
	// distribution (KS test does not reject), while different tiers'
	// distributions differ (KS rejects): the generator is stochastic but
	// stable.
	a, err := Generate(DZero(101, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DZero(202, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	sizes := func(tr *trace.Trace, tier trace.Tier) []float64 {
		var out []float64
		for i := range tr.Files {
			if tr.Files[i].Tier == tier {
				out = append(out, float64(tr.Files[i].Size))
			}
		}
		return out
	}
	same := stats.KSTest(sizes(a, trace.TierThumbnail), sizes(b, trace.TierThumbnail))
	if same.PValue < 0.001 {
		t.Errorf("same tier across seeds rejected: D=%v p=%v", same.D, same.PValue)
	}
	diff := stats.KSTest(sizes(a, trace.TierThumbnail), sizes(a, trace.TierReconstructed))
	if diff.PValue > 0.001 {
		t.Errorf("different tiers not separated: D=%v p=%v", diff.D, diff.PValue)
	}
}
