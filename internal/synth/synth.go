// Package synth generates synthetic DZero-like workload traces. It is the
// substitution for the proprietary SAM processing-history database the paper
// analyzes (see DESIGN.md): every knob is calibrated against the numbers the
// paper publishes — Table 1 per-tier job/user/file counts and volumes,
// Table 2 per-domain activity, 108 mean files per job, dataset-oriented
// access (which yields filecule structure), geographically partitioned
// interest (which yields the paper's non-Zipf popularity), and the Section 5
// hot filecule (2 files, ~2.2 GB, accessed by dozens of users at a handful
// of sites).
//
// The generator is deterministic for a given Config (including Seed).
package synth

import (
	"fmt"
	"math"
	"time"

	"filecule/internal/trace"
)

// TierParams configures one data tier's workload at Scale = 1.
type TierParams struct {
	Tier trace.Tier
	// Jobs and Files are the Table 1 counts at Scale 1.
	Jobs  int
	Files int
	// MeanFileSizeMB and FileSizeSigma shape the lognormal file-size
	// distribution; sizes are clamped to [1 MB, MaxFileSizeMB].
	MeanFileSizeMB float64
	FileSizeSigma  float64
	MaxFileSizeMB  float64
	// MeanJobHours is the Table 1 mean job duration.
	MeanJobHours float64
	// MeanDatasetsPerJob controls how many datasets a job requests;
	// together with MeanFilesPerDataset it calibrates input volume per
	// job and the 108-files-per-job headline number.
	MeanDatasetsPerJob float64
	// ActiveUserFrac is the fraction of the user population that runs
	// jobs in this tier (Table 1 users / 561).
	ActiveUserFrac float64
}

// DomainParams configures one Internet domain's population (Table 2 row).
type DomainParams struct {
	Domain string
	// Weight is the domain's relative job share.
	Weight float64
	Sites  int
	Nodes  int
	Users  int
}

// Config fully parameterizes the generator.
type Config struct {
	Seed  int64
	Scale float64
	// UserScale scales user populations; 0 means sqrt(Scale), which
	// preserves sharing structure at small scales better than linear
	// scaling.
	UserScale float64

	Start time.Time
	Days  int

	Tiers   []TierParams
	Domains []DomainParams

	// OtherJobs is the number of jobs without file-level information
	// (the Table 1 "Others" row) at Scale 1.
	OtherJobs            int
	OtherJobHours        float64
	OtherUserFrac        float64
	MeanFilesPerDataset  float64
	FilesPerDatasetSigma float64

	// Interest structure: datasets belong to regions; each domain
	// focuses on HomeRegions of the InterestRegions, giving the
	// geographically partitioned (non-Zipf) popularity of Section 3.2.
	InterestRegions       int
	HomeRegions           int
	ForeignInterestWeight float64
	// UserInterestDatasets is the mean size of a user's per-tier
	// interest set.
	UserInterestDatasets float64
	// InterestZipfS skews which datasets enter interest sets (within a
	// region); higher values concentrate interest on few datasets.
	InterestZipfS float64
	// JobZipfS skews which interest entry a job picks.
	JobZipfS float64

	// SubsetProb is the probability that a job reads a contiguous subset
	// of a dataset instead of the whole dataset; subsets are what split
	// datasets into finer filecules.
	SubsetProb float64
	// ShuffleWithinDataset randomizes the order in which a job reads a
	// dataset's files. SAM delivers files as they become available
	// rather than in a fixed order, so this is on in the calibrated
	// config; it also prevents sequence-based prefetchers from being
	// trivially clairvoyant (filecule identification is order-blind
	// either way).
	ShuffleWithinDataset bool
	// ExploreProb is the probability that one of a job's dataset picks
	// comes from outside the user's interest set (uniform within a
	// region chosen with home preference). Exploration spreads coverage
	// across the catalog and produces the long tail of rarely-requested
	// filecules visible in Figure 9.
	ExploreProb float64

	// PlantHotFilecule plants the Section 5 case-study filecule: a
	// 2-file, ~2.2 GB dataset read whole by many users from several
	// domains.
	PlantHotFilecule bool
	// HotJobs is the number of jobs on the hot filecule at Scale 1
	// (the paper observes 634).
	HotJobs int
}

// DZero returns the calibrated configuration reproducing the paper's
// workload at the given scale (1.0 = full paper scale; experiments typically
// run at 0.02-0.1 for speed).
func DZero(seed int64, scale float64) Config {
	return Config{
		Seed:  seed,
		Scale: scale,
		Start: time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:  810, // Jan 2003 - Mar 2005
		Tiers: []TierParams{
			{
				Tier: trace.TierReconstructed, Jobs: 17898, Files: 515677,
				MeanFileSizeMB: 620, FileSizeSigma: 0.7, MaxFileSizeMB: 2048,
				MeanJobHours: 11.01, MeanDatasetsPerJob: 4.9, ActiveUserFrac: 320.0 / 561,
			},
			{
				Tier: trace.TierRootTuple, Jobs: 1307, Files: 60719,
				MeanFileSizeMB: 550, FileSizeSigma: 0.9, MaxFileSizeMB: 2048,
				MeanJobHours: 13.68, MeanDatasetsPerJob: 20.0, ActiveUserFrac: 63.0 / 561,
			},
			{
				Tier: trace.TierThumbnail, Jobs: 94625, Files: 428610,
				MeanFileSizeMB: 480, FileSizeSigma: 0.8, MaxFileSizeMB: 2048,
				MeanJobHours: 4.89, MeanDatasetsPerJob: 8.8, ActiveUserFrac: 449.0 / 561,
			},
		},
		Domains: []DomainParams{
			{Domain: ".gov", Weight: 3319711, Sites: 1, Nodes: 12, Users: 466},
			{Domain: ".de", Weight: 390186, Sites: 4, Nodes: 5, Users: 23},
			{Domain: ".uk", Weight: 131760, Sites: 4, Nodes: 8, Users: 21},
			{Domain: ".edu", Weight: 54672, Sites: 12, Nodes: 18, Users: 32},
			{Domain: ".cz", Weight: 7400, Sites: 1, Nodes: 1, Users: 1},
			{Domain: ".ca", Weight: 5719, Sites: 2, Nodes: 5, Users: 4},
			{Domain: ".fr", Weight: 5086, Sites: 1, Nodes: 2, Users: 11},
			{Domain: ".nl", Weight: 3854, Sites: 2, Nodes: 3, Users: 8},
			{Domain: ".mx", Weight: 146, Sites: 1, Nodes: 1, Users: 1},
			{Domain: ".br", Weight: 12, Sites: 2, Nodes: 2, Users: 2},
			{Domain: ".cn", Weight: 4, Sites: 1, Nodes: 1, Users: 2},
			{Domain: ".in", Weight: 3, Sites: 1, Nodes: 1, Users: 2},
		},
		OtherJobs:     120962,
		OtherJobHours: 7.68,
		OtherUserFrac: 435.0 / 561,

		MeanFilesPerDataset:  12,
		FilesPerDatasetSigma: 1.3,

		InterestRegions:       20,
		HomeRegions:           3,
		ForeignInterestWeight: 0.03,
		UserInterestDatasets:  30,
		InterestZipfS:         0.7,
		JobZipfS:              0.9,

		SubsetProb:           0.15,
		ExploreProb:          0.2,
		ShuffleWithinDataset: true,

		PlantHotFilecule: true,
		HotJobs:          634,
	}
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("synth: Scale %v must be > 0", c.Scale)
	}
	if c.Days < 1 {
		return fmt.Errorf("synth: Days %d must be >= 1", c.Days)
	}
	if len(c.Tiers) == 0 {
		return fmt.Errorf("synth: need at least one tier")
	}
	if len(c.Domains) == 0 {
		return fmt.Errorf("synth: need at least one domain")
	}
	if c.MeanFilesPerDataset < 1 {
		return fmt.Errorf("synth: MeanFilesPerDataset %v must be >= 1", c.MeanFilesPerDataset)
	}
	if c.InterestRegions < 1 || c.HomeRegions < 1 || c.HomeRegions > c.InterestRegions {
		return fmt.Errorf("synth: bad region structure %d/%d", c.HomeRegions, c.InterestRegions)
	}
	if c.SubsetProb < 0 || c.SubsetProb > 1 {
		return fmt.Errorf("synth: SubsetProb %v outside [0,1]", c.SubsetProb)
	}
	if c.ExploreProb < 0 || c.ExploreProb > 1 {
		return fmt.Errorf("synth: ExploreProb %v outside [0,1]", c.ExploreProb)
	}
	for i := range c.Tiers {
		t := &c.Tiers[i]
		if t.Jobs < 0 || t.Files < 0 || t.MeanFileSizeMB <= 0 || t.MeanJobHours <= 0 || t.MeanDatasetsPerJob <= 0 {
			return fmt.Errorf("synth: tier %v has non-positive parameters", t.Tier)
		}
		if t.ActiveUserFrac <= 0 || t.ActiveUserFrac > 1 {
			return fmt.Errorf("synth: tier %v ActiveUserFrac %v outside (0,1]", t.Tier, t.ActiveUserFrac)
		}
	}
	return nil
}

func (c *Config) userScale() float64 {
	if c.UserScale > 0 {
		return c.UserScale
	}
	if c.Scale >= 1 {
		return c.Scale
	}
	return math.Sqrt(c.Scale)
}

// scaleCount scales an at-Scale-1 count, keeping at least min.
func scaleCount(n int, scale float64, min int) int {
	s := int(math.Round(float64(n) * scale))
	if s < min {
		return min
	}
	return s
}
