package synth

import (
	"io"
	"testing"
)

func xrootdTestConfig(seed int64) XRootDConfig {
	return XRootDConfig{Seed: seed, Scale: 0.01}
}

func TestXRootDGenerateValid(t *testing.T) {
	tr, err := GenerateXRootD(xrootdTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("xrootd trace invalid: %v", err)
	}
	if len(tr.Jobs) == 0 || len(tr.Files) == 0 {
		t.Fatalf("empty trace: %d jobs %d files", len(tr.Jobs), len(tr.Files))
	}
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Start.Before(tr.Jobs[i-1].Start) {
			t.Fatalf("jobs not start-sorted at %d", i)
		}
	}
}

func TestXRootDDeterminism(t *testing.T) {
	a, err := GenerateXRootD(xrootdTestConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateXRootD(xrootdTestConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) || len(a.Files) != len(b.Files) {
		t.Fatalf("nondeterministic shape: %d/%d jobs, %d/%d files",
			len(a.Jobs), len(b.Jobs), len(a.Files), len(b.Files))
	}
	for i := range a.Jobs {
		ja, jb := &a.Jobs[i], &b.Jobs[i]
		if ja.User != jb.User || !ja.Start.Equal(jb.Start) || len(ja.Files) != len(jb.Files) {
			t.Fatalf("job %d differs across identical runs", i)
		}
		for k := range ja.Files {
			if ja.Files[k] != jb.Files[k] {
				t.Fatalf("job %d file %d differs", i, k)
			}
		}
	}
	c, err := GenerateXRootD(xrootdTestConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Jobs) == len(a.Jobs)
	if same {
		for i := range a.Jobs {
			if len(a.Jobs[i].Files) != len(c.Jobs[i].Files) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical-looking trace")
	}
}

// TestXRootDSourceMatchesGenerate: the streaming source emits exactly the
// jobs Generate materializes (source order is already start-sorted).
func TestXRootDSourceMatchesGenerate(t *testing.T) {
	tr, err := GenerateXRootD(xrootdTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewXRootDSource(xrootdTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if len(src.Files()) != len(tr.Files) {
		t.Fatalf("catalog mismatch: %d vs %d files", len(src.Files()), len(tr.Files))
	}
	for i := 0; ; i++ {
		j, err := src.Next()
		if err == io.EOF {
			if i != len(tr.Jobs) {
				t.Fatalf("stream ended after %d jobs, trace has %d", i, len(tr.Jobs))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := &tr.Jobs[i]
		if j.ID != want.ID || j.User != want.User || !j.Start.Equal(want.Start) {
			t.Fatalf("job %d: stream %+v vs generate %+v", i, j, want)
		}
		for k := range j.Files {
			if j.Files[k] != want.Files[k] {
				t.Fatalf("job %d file %d mismatch", i, k)
			}
		}
	}
}

// TestXRootDWorkloadShape sanity-checks the Bellavita-style statistics the
// model exists to reproduce: a substantial one-touch population, small
// input sets, and reuse concentrated on young files.
func TestXRootDWorkloadShape(t *testing.T) {
	tr, err := GenerateXRootD(XRootDConfig{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	touches := make([]int, len(tr.Files))
	requests := 0
	for i := range tr.Jobs {
		requests += len(tr.Jobs[i].Files)
		for _, f := range tr.Jobs[i].Files {
			touches[f]++
		}
	}
	oneTouch, accessed := 0, 0
	for _, n := range touches {
		if n == 1 {
			oneTouch++
		}
		if n > 0 {
			accessed++
		}
	}
	if accessed == 0 {
		t.Fatal("no file accessed")
	}
	frac := float64(oneTouch) / float64(accessed)
	if frac < 0.25 || frac > 0.9 {
		t.Errorf("one-touch fraction %v outside the scientific-cache regime [0.25, 0.9]", frac)
	}
	mean := float64(requests) / float64(len(tr.Jobs))
	if mean < 1.5 || mean > 12 {
		t.Errorf("mean files/job %v outside the XCache regime (few files per job)", mean)
	}
}

// TestXRootDConfigValidation rejects nonsense configurations.
func TestXRootDConfigValidation(t *testing.T) {
	bad := []XRootDConfig{
		{Seed: 1, Scale: 0},
		{Seed: 1, Scale: -2},
		{Seed: 1, Scale: 0.1, OneTouchFrac: 1.5},
		{Seed: 1, Scale: 0.1, GroupProb: 2},
		{Seed: 1, Scale: 0.1, DecayDays: -1},
	}
	for i, c := range bad {
		if _, err := NewXRootDSource(c); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

// TestXRootDDrain uses the stream-count helper against the materialized
// count to pin stream length.
func TestXRootDDrain(t *testing.T) {
	src, err := NewXRootDSource(xrootdTestConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	n, err := drainCount(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil || err == io.EOF {
		t.Fatal("Next after Close should fail")
	}
	tr, err := GenerateXRootD(xrootdTestConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(tr.Jobs)) {
		t.Fatalf("stream drained %d jobs, generate made %d", n, len(tr.Jobs))
	}
}
