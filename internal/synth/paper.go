package synth

// Published calibration targets, straight from the paper's tables. These are
// the numbers the generator is tuned to and the numbers EXPERIMENTS.md
// compares against.

// PaperTierRow is one row of Table 1.
type PaperTierRow struct {
	Tier          string
	Users         int
	Jobs          int
	Files         int
	InputPerJobMB float64 // N/A encoded as 0
	TimePerJobHrs float64
}

// PaperTable1 reproduces Table 1 of the paper ("Characteristics of traces
// analyzed per data tier").
var PaperTable1 = []PaperTierRow{
	{Tier: "reconstructed", Users: 320, Jobs: 17898, Files: 515677, InputPerJobMB: 36371, TimePerJobHrs: 11.01},
	{Tier: "root-tuple", Users: 63, Jobs: 1307, Files: 60719, InputPerJobMB: 83041, TimePerJobHrs: 13.68},
	{Tier: "thumbnail", Users: 449, Jobs: 94625, Files: 428610, InputPerJobMB: 53619, TimePerJobHrs: 4.89},
	{Tier: "other", Users: 435, Jobs: 120962, Files: 0, InputPerJobMB: 0, TimePerJobHrs: 7.68},
	{Tier: "all", Users: 561, Jobs: 233792, Files: 0, InputPerJobMB: 0, TimePerJobHrs: 6.87},
}

// PaperDomainRow is one row of Table 2.
type PaperDomainRow struct {
	Domain      string
	Jobs        int // used as a relative activity weight; Table 2 counts a finer-grained job unit than Table 1
	Nodes       int
	Sites       int
	Users       int
	Filecules   int
	Files       int
	TotalDataGB float64
}

// PaperTable2 reproduces Table 2 of the paper ("Characteristics of analyzed
// traces per location").
var PaperTable2 = []PaperDomainRow{
	{Domain: ".gov", Jobs: 3319711, Nodes: 12, Sites: 1, Users: 466, Filecules: 95234, Files: 945031, TotalDataGB: 4930850},
	{Domain: ".de", Jobs: 390186, Nodes: 5, Sites: 4, Users: 23, Filecules: 33403, Files: 100257, TotalDataGB: 268815},
	{Domain: ".uk", Jobs: 131760, Nodes: 8, Sites: 4, Users: 21, Filecules: 23876, Files: 62427, TotalDataGB: 117097},
	{Domain: ".edu", Jobs: 54672, Nodes: 18, Sites: 12, Users: 32, Filecules: 14504, Files: 36868, TotalDataGB: 41081},
	{Domain: ".cz", Jobs: 7400, Nodes: 1, Sites: 1, Users: 1, Filecules: 4789, Files: 7660, TotalDataGB: 9869},
	{Domain: ".ca", Jobs: 5719, Nodes: 5, Sites: 2, Users: 4, Filecules: 649, Files: 8937, TotalDataGB: 22341},
	{Domain: ".fr", Jobs: 5086, Nodes: 2, Sites: 1, Users: 11, Filecules: 1767, Files: 18215, TotalDataGB: 23958},
	{Domain: ".nl", Jobs: 3854, Nodes: 3, Sites: 2, Users: 8, Filecules: 888, Files: 38812, TotalDataGB: 44012},
	{Domain: ".mx", Jobs: 146, Nodes: 1, Sites: 1, Users: 1, Filecules: 32, Files: 1589, TotalDataGB: 349},
	{Domain: ".br", Jobs: 12, Nodes: 2, Sites: 2, Users: 2, Filecules: 2, Files: 2, TotalDataGB: 2},
	{Domain: ".cn", Jobs: 4, Nodes: 1, Sites: 1, Users: 2, Filecules: 2, Files: 62, TotalDataGB: 31},
	{Domain: ".in", Jobs: 3, Nodes: 1, Sites: 1, Users: 2, Filecules: 2, Files: 2, TotalDataGB: 0.7},
}

// Headline figures quoted in the paper's introduction and Section 4.
const (
	// PaperMeanFilesPerJob: "Jobs are run on multiple files, on average
	// 108 files per job."
	PaperMeanFilesPerJob = 108
	// PaperDistinctFiles: "more than 13 million accesses to about 1.13
	// million distinct files".
	PaperDistinctFiles = 1130000
	// PaperFileAccesses: total file accesses in the instrumented jobs.
	PaperFileAccesses = 13000000
	// PaperJobsWithFileInfo: "we have detailed data access information
	// about half of the jobs: these 115,895 jobs".
	PaperJobsWithFileInfo = 115895
	// PaperMaxUsersPerFilecule: Figure 4 caps at 44 users.
	PaperMaxUsersPerFilecule = 44
	// PaperSingleUserFileculeFrac: "about 10% of the filecules are
	// accessed by one user only".
	PaperSingleUserFileculeFrac = 0.10
	// PaperLargestFileculeTB: "The largest filecule in our experiments is
	// 17TB."
	PaperLargestFileculeTB = 17.0
	// PaperHotFileculeFiles..Jobs: the Section 5 case-study filecule:
	// 2 files, 2.2 GB, 42 users, 6 sites, 634 jobs.
	PaperHotFileculeFiles = 2
	PaperHotFileculeGB    = 2.2
	PaperHotFileculeUsers = 42
	PaperHotFileculeSites = 6
	PaperHotFileculeJobs  = 634
	// PaperFig10Gain: filecule LRU beats file LRU by 4-5x in miss rate at
	// large cache sizes, only ~9.5% at 1 TB.
	PaperFig10LargeCacheGain = 4.5
	PaperFig10SmallCacheGain = 1.095
)
