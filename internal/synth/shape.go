package synth

import (
	"fmt"
	"io"
	"math"
	"time"

	"filecule/internal/trace"
)

// RPS shaping re-times a job stream to follow a load profile — the ramp,
// sweep and burst modes of serverless trace synthesizers (vhive invitro).
// Shaping never changes which jobs exist, their order, their file lists or
// their durations; it only rewrites arrival times, so filecule partitions
// (order-blind) are untouched while anything time-sensitive — cache
// interleaving, loadgen pacing, dynamics analyses — sees the shaped load.

// ShapeMode selects the RPS profile.
type ShapeMode uint8

// Shaping modes.
const (
	// ShapeNone leaves arrival times untouched.
	ShapeNone ShapeMode = iota
	// ShapeRamp moves the rate from StartRPS toward TargetRPS by StepRPS
	// per slot and holds at TargetRPS.
	ShapeRamp
	// ShapeSweep bounces the rate between StartRPS and TargetRPS by
	// StepRPS per slot (a triangle wave).
	ShapeSweep
	// ShapeBurst alternates slots at StartRPS (baseline) and TargetRPS
	// (burst).
	ShapeBurst
)

// String returns the mode name accepted by ParseShapeMode.
func (m ShapeMode) String() string {
	switch m {
	case ShapeRamp:
		return "ramp"
	case ShapeSweep:
		return "sweep"
	case ShapeBurst:
		return "burst"
	default:
		return "none"
	}
}

// ParseShapeMode converts a mode name to a ShapeMode.
func ParseShapeMode(s string) (ShapeMode, error) {
	switch s {
	case "", "none":
		return ShapeNone, nil
	case "ramp":
		return ShapeRamp, nil
	case "sweep":
		return ShapeSweep, nil
	case "burst":
		return ShapeBurst, nil
	default:
		return ShapeNone, fmt.Errorf("synth: unknown shape mode %q (have none, ramp, sweep, burst)", s)
	}
}

// Shape is an RPS schedule: time is divided into fixed Slot windows, each
// with a jobs-per-second rate determined by Mode. The zero value (ShapeNone)
// is a no-op.
type Shape struct {
	Mode ShapeMode
	// StartRPS is the first slot's rate (and the baseline rate for burst).
	StartRPS float64
	// TargetRPS is the rate ramped toward (ramp), bounced against (sweep),
	// or burst to (burst).
	TargetRPS float64
	// StepRPS is the per-slot rate change for ramp and sweep; burst
	// ignores it.
	StepRPS float64
	// Slot is each rate window's duration.
	Slot time.Duration
}

// Validate checks the schedule. A ShapeNone schedule is always valid.
func (sh Shape) Validate() error {
	if sh.Mode == ShapeNone {
		return nil
	}
	if sh.StartRPS <= 0 || math.IsNaN(sh.StartRPS) || math.IsInf(sh.StartRPS, 0) {
		return fmt.Errorf("synth: shape rps-start %v must be > 0 and finite", sh.StartRPS)
	}
	if sh.TargetRPS <= 0 || math.IsNaN(sh.TargetRPS) || math.IsInf(sh.TargetRPS, 0) {
		return fmt.Errorf("synth: shape rps-target %v must be > 0 and finite", sh.TargetRPS)
	}
	if sh.Slot <= 0 {
		return fmt.Errorf("synth: shape slot %v must be > 0", sh.Slot)
	}
	if sh.Mode == ShapeRamp || sh.Mode == ShapeSweep {
		if sh.StepRPS <= 0 || math.IsNaN(sh.StepRPS) || math.IsInf(sh.StepRPS, 0) {
			return fmt.Errorf("synth: shape rps-step %v must be > 0 and finite for %s mode", sh.StepRPS, sh.Mode)
		}
	}
	return nil
}

// rate returns the schedule's jobs-per-second rate during slot k.
func (sh Shape) rate(k int64) float64 {
	switch sh.Mode {
	case ShapeRamp:
		d := sh.TargetRPS - sh.StartRPS
		if d == 0 {
			return sh.StartRPS
		}
		r := sh.StartRPS + math.Copysign(sh.StepRPS*float64(k), d)
		if (d > 0 && r > sh.TargetRPS) || (d < 0 && r < sh.TargetRPS) {
			return sh.TargetRPS
		}
		return r
	case ShapeSweep:
		lo, hi := sh.StartRPS, sh.TargetRPS
		if lo > hi {
			lo, hi = hi, lo
		}
		span := hi - lo
		if span == 0 {
			return sh.StartRPS
		}
		steps := int64(math.Ceil(span / sh.StepRPS))
		pos := k % (2 * steps)
		if pos > steps {
			pos = 2*steps - pos
		}
		r := sh.StartRPS
		if sh.StartRPS <= sh.TargetRPS {
			r = sh.StartRPS + sh.StepRPS*float64(pos)
		} else {
			r = sh.StartRPS - sh.StepRPS*float64(pos)
		}
		if r > hi {
			r = hi
		}
		if r < lo {
			r = lo
		}
		return r
	case ShapeBurst:
		if k%2 == 1 {
			return sh.TargetRPS
		}
		return sh.StartRPS
	default:
		return 0
	}
}

// Pacer walks a Shape's arrival schedule one job at a time: the k'th call to
// Next returns the k'th job's offset from the schedule epoch. It is the
// deterministic arithmetic shared by Reshape (which rewrites trace times)
// and server.LoadGen (which sleeps until each offset before sending).
// A Pacer is not safe for concurrent use.
type Pacer struct {
	sh     Shape
	cursor time.Duration
}

// NewPacer returns a pacer over a validated schedule. The first Next returns
// offset 0.
func NewPacer(sh Shape) *Pacer { return &Pacer{sh: sh} }

// Next returns the next job's offset from the epoch and advances the
// schedule. For ShapeNone every offset is 0.
func (p *Pacer) Next() time.Duration {
	if p.sh.Mode == ShapeNone {
		return 0
	}
	off := p.cursor
	slot := int64(p.cursor / p.sh.Slot)
	r := p.sh.rate(slot)
	p.cursor += time.Duration(float64(time.Second) / r)
	return off
}

// Reshape wraps src so every job's Start is rewritten to epoch plus the
// schedule offset of its position in the stream, preserving order, duration
// and everything else. With ShapeNone it returns src unchanged. Shaped
// streams are emitted in nondecreasing start order by construction.
func Reshape(src trace.Source, sh Shape, epoch time.Time) (trace.Source, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	if sh.Mode == ShapeNone {
		return src, nil
	}
	return &shapedSource{src: src, p: NewPacer(sh), epoch: epoch}, nil
}

type shapedSource struct {
	src   trace.Source
	p     *Pacer
	epoch time.Time
	job   trace.Job
}

func (s *shapedSource) Files() []trace.File { return s.src.Files() }
func (s *shapedSource) Users() []trace.User { return s.src.Users() }
func (s *shapedSource) Sites() []trace.Site { return s.src.Sites() }
func (s *shapedSource) Close() error        { return s.src.Close() }

func (s *shapedSource) Next() (*trace.Job, error) {
	j, err := s.src.Next()
	if err != nil {
		return nil, err
	}
	// Shallow copy: Files/Outputs stay aliased to the inner source's
	// buffers, which is fine because both are invalidated together by the
	// following Next.
	s.job = *j
	d := j.End.Sub(j.Start)
	s.job.Start = s.epoch.Add(s.p.Next())
	s.job.End = s.job.Start.Add(d)
	return &s.job, nil
}

// GenerateShaped materializes a shaped stream into a validated, start-sorted
// trace — the whole-trace counterpart of Reshape, used by workload adapters'
// Load paths.
func GenerateShaped(src trace.Source, sh Shape, epoch time.Time) (*trace.Trace, error) {
	shaped, err := Reshape(src, sh, epoch)
	if err != nil {
		src.Close()
		return nil, err
	}
	defer shaped.Close()
	t, err := trace.Materialize(shaped)
	if err != nil {
		return nil, err
	}
	t.SortJobsByStart()
	return t, nil
}

// drainCount is a test hook: counts the jobs remaining in a source.
func drainCount(src trace.Source) (int64, error) {
	var n int64
	for {
		if _, err := src.Next(); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
		n++
	}
}
