package synth

import (
	"fmt"
	"io"

	"filecule/internal/trace"
)

// NewSource returns a trace.Source that generates the synthetic workload one
// job at a time, so a trace of any configured size streams through bounded
// memory: only the catalogs (files, users, sites) and the generator's
// samplers are ever resident, never the job history.
//
// The stream contains exactly the jobs Generate(cfg) produces — same RNG
// draw sequence, same catalogs, same file IDs — but in generation order
// (per-tier analysis jobs, background jobs, hot case-study jobs) with IDs
// renumbered densely along the stream, whereas Generate sorts jobs by start
// time before numbering. Filecule identification is commutative over job
// order, so partitions agree; consumers that need start-time order should
// Materialize and SortJobsByStart, which reproduces Generate exactly.
func NewSource(cfg Config) (trace.Source, error) {
	g, err := newGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return &source{g: g, phases: g.jobPhases()}, nil
}

type source struct {
	g      *generator
	phases []jobPhase
	k      int   // jobs emitted from phases[0]
	n      int64 // jobs emitted in total
	job    trace.Job
	closed bool
}

func (s *source) Files() []trace.File { return s.g.b.Files() }
func (s *source) Users() []trace.User { return s.g.b.Users() }
func (s *source) Sites() []trace.Site { return s.g.b.Sites() }

func (s *source) Next() (*trace.Job, error) {
	if s.closed {
		return nil, fmt.Errorf("synth: source is closed")
	}
	for len(s.phases) > 0 && s.k >= s.phases[0].n {
		s.phases = s.phases[1:]
		s.k = 0
	}
	if len(s.phases) == 0 {
		return nil, io.EOF
	}
	s.job = s.phases[0].make()
	s.job.ID = trace.JobID(s.n)
	s.k++
	s.n++
	return &s.job, nil
}

func (s *source) Close() error {
	s.closed = true
	s.phases = nil
	return nil
}
