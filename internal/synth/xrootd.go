package synth

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"filecule/internal/dist"
	"filecule/internal/trace"
)

// XRootD-style scientific-cache workload model, after Bellavita et al.'s
// characterization of the US CMS XCache federation ("Understanding the
// Scientific Data Cache Ecosystem"): unlike the dataset-oriented DZero
// workload, an XRootD cache sees a long birth-ordered stream of files where
// (a) a large fraction of files are touched exactly once and never again,
// (b) reuse probability decays exponentially with file age (most re-reads
// hit recently-born files), and (c) the remaining correlation structure
// comes from jobs sweeping short contiguous runs of files that were
// registered together (the vestigial "dataset" signal — much weaker than
// DZero's). This is the adversarial regime for filecule caching: group
// structure exists but is shallow, so the Figure-10 comparison on this
// model answers whether filecule granularity still wins when sharing is
// thin.
//
// The generator is deterministic for a given XRootDConfig (including Seed)
// and streams jobs through bounded memory like the DZero source: only the
// catalogs and samplers are resident.

// XRootDConfig parameterizes the scientific-cache workload at Scale = 1.
// The zero value of every field (except Seed/Scale) selects the calibrated
// default from XRootDDefaults.
type XRootDConfig struct {
	Seed  int64
	Scale float64

	// Days is the trace span; files are born uniformly across it.
	Days int
	// Files and Jobs are the at-Scale-1 catalog and job counts.
	Files int
	Jobs  int
	// MeanFileSizeMB / FileSizeSigma / MaxFileSizeMB shape the lognormal
	// file-size distribution (clamped to [1 MB, MaxFileSizeMB]).
	MeanFileSizeMB float64
	FileSizeSigma  float64
	MaxFileSizeMB  float64
	// MeanFilesPerJob is the mean input-set size; XCache jobs read few
	// files (2–3), not DZero's 108.
	MeanFilesPerJob float64
	// OneTouchFrac is the probability a job request draws from the
	// never-seen cold pool (the one-touch population).
	OneTouchFrac float64
	// DecayDays is the mean age, in days, of files selected for reuse:
	// reuse probability decays exponentially with age at this constant.
	DecayDays float64
	// GroupProb is the probability a job reads a contiguous birth-order
	// group of files instead of independent picks; GroupSize is the mean
	// length of such a run.
	GroupProb float64
	GroupSize float64
	// Users and Sites are the at-Scale-1 population sizes.
	Users int
	Sites int
	// ZipfS skews which recently-born files are re-read (higher = the
	// popular few dominate).
	ZipfS float64
}

// XRootDDefaults returns the calibrated configuration at the given seed and
// scale: at Scale 1, 400k files over 180 days, 150k jobs averaging ~2.6
// files each, 35% one-touch draws, 7-day reuse decay, and 30% of jobs
// reading a contiguous birth group of mean length 8.
func XRootDDefaults(seed int64, scale float64) XRootDConfig {
	return XRootDConfig{
		Seed:            seed,
		Scale:           scale,
		Days:            180,
		Files:           400_000,
		Jobs:            150_000,
		MeanFileSizeMB:  950, // CMS AODs cluster around a GB
		FileSizeSigma:   1.1,
		MaxFileSizeMB:   8 * 1024,
		MeanFilesPerJob: 2.6,
		OneTouchFrac:    0.35,
		DecayDays:       7,
		GroupProb:       0.30,
		GroupSize:       8,
		Users:           300,
		Sites:           12,
		ZipfS:           0.9,
	}
}

// withDefaults fills zero-valued knobs from XRootDDefaults.
func (c XRootDConfig) withDefaults() XRootDConfig {
	d := XRootDDefaults(c.Seed, c.Scale)
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.Files == 0 {
		c.Files = d.Files
	}
	if c.Jobs == 0 {
		c.Jobs = d.Jobs
	}
	if c.MeanFileSizeMB == 0 {
		c.MeanFileSizeMB = d.MeanFileSizeMB
	}
	if c.FileSizeSigma == 0 {
		c.FileSizeSigma = d.FileSizeSigma
	}
	if c.MaxFileSizeMB == 0 {
		c.MaxFileSizeMB = d.MaxFileSizeMB
	}
	if c.MeanFilesPerJob == 0 {
		c.MeanFilesPerJob = d.MeanFilesPerJob
	}
	if c.OneTouchFrac == 0 {
		c.OneTouchFrac = d.OneTouchFrac
	}
	if c.DecayDays == 0 {
		c.DecayDays = d.DecayDays
	}
	if c.GroupProb == 0 {
		c.GroupProb = d.GroupProb
	}
	if c.GroupSize == 0 {
		c.GroupSize = d.GroupSize
	}
	if c.Users == 0 {
		c.Users = d.Users
	}
	if c.Sites == 0 {
		c.Sites = d.Sites
	}
	if c.ZipfS == 0 {
		c.ZipfS = d.ZipfS
	}
	return c
}

// Validate checks the configuration after defaulting.
func (c XRootDConfig) Validate() error {
	if c.Scale <= 0 || math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) {
		return fmt.Errorf("synth: xrootd scale %v must be > 0 and finite", c.Scale)
	}
	if c.Days <= 0 {
		return fmt.Errorf("synth: xrootd days %d must be > 0", c.Days)
	}
	if c.OneTouchFrac < 0 || c.OneTouchFrac >= 1 {
		return fmt.Errorf("synth: xrootd one-touch fraction %v must be in [0,1)", c.OneTouchFrac)
	}
	if c.GroupProb < 0 || c.GroupProb > 1 {
		return fmt.Errorf("synth: xrootd group probability %v must be in [0,1]", c.GroupProb)
	}
	if c.DecayDays <= 0 {
		return fmt.Errorf("synth: xrootd decay-days %v must be > 0", c.DecayDays)
	}
	if c.MeanFilesPerJob < 1 {
		return fmt.Errorf("synth: xrootd mean files/job %v must be >= 1", c.MeanFilesPerJob)
	}
	return nil
}

// XRootDEpoch anchors the synthetic timeline (arbitrary but fixed so traces
// are reproducible byte-for-byte).
var XRootDEpoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// NewXRootDSource returns a streaming trace.Source over the scientific-cache
// workload. Jobs are emitted in nondecreasing start order, so materializing
// and sorting is a stable no-op reordering.
func NewXRootDSource(cfg XRootDConfig) (trace.Source, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &xrootdGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.build()
	return g, nil
}

type xrootdGen struct {
	cfg XRootDConfig
	rng *rand.Rand

	b     *trace.Builder
	files []trace.FileID // birth order == ID order
	users []trace.UserID
	sites []trace.SiteID

	nFiles  int
	nJobs   int
	span    time.Duration // trace span
	birthDt time.Duration // spacing between consecutive file births

	sizeS   dist.Lognormal
	userOf  dist.Zipf // which user runs a job
	jitterZ dist.Zipf // rank jitter around the age-targeted file

	emitted int
	job     trace.Job
	fileBuf []trace.FileID
	closed  bool
}

// build constructs the catalogs. All randomness is drawn from g.rng in a
// fixed order, so the stream is a pure function of the config.
func (g *xrootdGen) build() {
	c := &g.cfg
	g.nFiles = scaleCount(c.Files, c.Scale, 64)
	g.nJobs = scaleCount(c.Jobs, c.Scale, 32)
	nUsers := scaleCount(c.Users, math.Sqrt(c.Scale), 4)
	nSites := scaleCount(c.Sites, math.Sqrt(c.Scale), 2)
	if nUsers < nSites {
		nUsers = nSites
	}
	g.span = time.Duration(c.Days) * 24 * time.Hour
	g.birthDt = g.span / time.Duration(g.nFiles)

	g.b = trace.NewBuilder()
	g.sites = make([]trace.SiteID, nSites)
	for i := range g.sites {
		g.sites[i] = g.b.Site(fmt.Sprintf("xcache-t2-%02d", i), ".edu", 1+i%4)
	}
	g.users = make([]trace.UserID, nUsers)
	for i := range g.users {
		g.users[i] = g.b.User(fmt.Sprintf("cms%03d", i), g.sites[i%nSites])
	}

	g.sizeS = dist.LognormalFromMean(c.MeanFileSizeMB, c.FileSizeSigma)
	maxB := int64(c.MaxFileSizeMB * 1e6)
	g.files = make([]trace.FileID, g.nFiles)
	for i := range g.files {
		size := dist.ClampInt64(g.sizeS.Sample(g.rng)*1e6, 1e6, maxB)
		g.files[i] = g.b.File(fmt.Sprintf("/store/data/block%04d/f%07d.root", i/256, i), size, trace.TierReconstructed)
	}

	g.userOf = dist.NewZipf(1.1, uint64(len(g.users)))
	// Jitter spreads reuse over ~1 birth-day of neighbors around the
	// age-targeted file, Zipf-weighted toward the target itself.
	perDay := g.nFiles/c.Days + 1
	g.jitterZ = dist.NewZipf(c.ZipfS, uint64(perDay))
}

func (g *xrootdGen) Files() []trace.File { return g.b.Files() }
func (g *xrootdGen) Users() []trace.User { return g.b.Users() }
func (g *xrootdGen) Sites() []trace.Site { return g.b.Sites() }

// birthTime returns file i's registration time.
func (g *xrootdGen) birthTime(i int) time.Time {
	return XRootDEpoch.Add(time.Duration(i) * g.birthDt)
}

// pickReuse selects a file for re-reading as of arrival time now: sample an
// age from Exp(DecayDays), map it to the birth index that age ago, then
// jitter by a Zipf rank so the popular few near the target dominate.
func (g *xrootdGen) pickReuse(bornBy int) trace.FileID {
	ageDays := g.rng.ExpFloat64() * g.cfg.DecayDays
	perDay := float64(g.nFiles) / float64(g.cfg.Days)
	target := bornBy - int(ageDays*perDay)
	if target < 0 {
		target = 0
	}
	j := int(g.jitterZ.Rank(g.rng))
	if g.rng.Intn(2) == 0 {
		j = -j
	}
	idx := target + j
	if idx < 0 {
		idx = 0
	}
	if idx > bornBy {
		idx = bornBy
	}
	return g.files[idx]
}

func (g *xrootdGen) Next() (*trace.Job, error) {
	if g.closed {
		return nil, fmt.Errorf("synth: xrootd source is closed")
	}
	if g.emitted >= g.nJobs {
		return nil, io.EOF
	}
	c := &g.cfg

	// Jobs arrive uniformly across the span in emission order, so starts
	// are nondecreasing by construction.
	frac := float64(g.emitted) / float64(g.nJobs)
	start := XRootDEpoch.Add(time.Duration(frac * float64(g.span)))
	// bornBy: index of the newest file that exists at this arrival.
	bornBy := int(frac * float64(g.nFiles))
	if bornBy >= g.nFiles {
		bornBy = g.nFiles - 1
	}

	g.fileBuf = g.fileBuf[:0]
	if g.rng.Float64() < c.GroupProb {
		// Contiguous birth-order group: the weak dataset signal.
		n := dist.ClampInt(g.rng.ExpFloat64()*c.GroupSize, 2, 4*int(c.GroupSize))
		lead := g.pickReuse(bornBy)
		for i := 0; i < n; i++ {
			idx := int(lead) + i
			if idx > bornBy {
				break
			}
			g.fileBuf = append(g.fileBuf, g.files[idx])
		}
	} else {
		n := dist.ClampInt(g.rng.ExpFloat64()*(c.MeanFilesPerJob-1)+1, 1, 64)
		for i := 0; i < n; i++ {
			if g.rng.Float64() < c.OneTouchFrac {
				// Cold draw: a uniformly random already-born file.
				// Most of these are genuinely one-touch because the
				// reuse path concentrates on the recent tail.
				g.fileBuf = append(g.fileBuf, g.files[g.rng.Intn(bornBy+1)])
			} else {
				g.fileBuf = append(g.fileBuf, g.pickReuse(bornBy))
			}
		}
	}

	u := g.users[g.userOf.Rank(g.rng)]
	dur := time.Duration((5 + g.rng.ExpFloat64()*40) * float64(time.Minute))
	g.job = trace.Job{
		ID:     trace.JobID(g.emitted),
		User:   u,
		Site:   g.b.Users()[u].Site,
		Node:   "xcache",
		Tier:   trace.TierReconstructed,
		Family: trace.FamilyAnalysis,
		App:    "cmsRun",
		Start:  start,
		End:    start.Add(dur),
		Files:  g.fileBuf,
	}
	g.emitted++
	return &g.job, nil
}

func (g *xrootdGen) Close() error {
	g.closed = true
	return nil
}

// GenerateXRootD materializes the full scientific-cache trace, start-sorted
// and validated — the Load-path counterpart of NewXRootDSource.
func GenerateXRootD(cfg XRootDConfig) (*trace.Trace, error) {
	src, err := NewXRootDSource(cfg)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	t, err := trace.Materialize(src)
	if err != nil {
		return nil, err
	}
	t.SortJobsByStart()
	return t, nil
}
