package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"filecule/internal/dist"
	"filecule/internal/trace"
)

// Generate produces a synthetic trace from the configuration. The same
// Config always yields the identical trace.
func Generate(cfg Config) (*trace.Trace, error) {
	g, err := newGenerator(cfg)
	if err != nil {
		return nil, err
	}
	for _, ph := range g.jobPhases() {
		for k := 0; k < ph.n; k++ {
			g.b.Job(ph.make())
		}
	}
	t := g.b.Build()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated invalid trace: %w", err)
	}
	return t, nil
}

// newGenerator validates the config and runs every setup phase: catalogs,
// datasets, interest lists and arrival profile. After it returns, the file,
// user and site catalogs are complete (the hot case-study files included) and
// only job emission — via jobPhases — remains. None of the phase constructors
// draw from the RNG, so jobs pulled lazily see exactly the draw sequence
// Generate's eager loops see.
func newGenerator(cfg Config) (*generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg: &cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		b:   trace.NewBuilder(),
	}
	g.buildSites()
	g.buildUsers()
	g.buildDatasets()
	// Hot files are created directly after the datasets: the job loops
	// between here and plantHotFilecule's original position create no
	// files and the creation draws no randomness, so IDs and RNG state
	// are unchanged — but the catalog is complete before any job exists.
	g.plantHotFiles()
	g.buildInterests()
	g.buildDayChooser()
	return g, nil
}

// jobPhase is one deterministic run of jobs: make must be called exactly n
// times, in phase order, because each call advances the shared RNG.
type jobPhase struct {
	n    int
	make func() trace.Job
}

// jobPhases returns the job runs in generation order: per-tier analysis
// jobs, non-analysis background jobs, then the hot case-study jobs.
func (g *generator) jobPhases() []jobPhase {
	var phases []jobPhase
	for t := range g.cfg.Tiers {
		phases = append(phases, g.tierPhase(t))
	}
	phases = append(phases, g.otherPhase(), g.hotPhase())
	return phases
}

// dataset is a group of files created together (a SAM dataset); whole- or
// subset-requests of datasets are what induce filecule structure.
type dataset struct {
	files  []trace.FileID
	region int
}

type userInfo struct {
	id     trace.UserID
	site   trace.SiteID
	domain int
	active []bool // per tier index
	// interests[tier] is the user's ordered interest list (favorite
	// first) of dataset indices within that tier.
	interests [][]int
}

type generator struct {
	cfg *Config
	rng *rand.Rand
	b   *trace.Builder

	// Per domain.
	domainSites [][]trace.SiteID
	siteNodes   map[trace.SiteID][]string
	domainUsers [][]int // indices into users

	users []userInfo
	// usersByDomainTier[d][t] lists user indices of domain d active in
	// tier t; usersByTier[t] is the global fallback.
	usersByDomainTier [][][]int
	usersByTier       [][]int

	// Per tier index.
	datasets [][]dataset
	// regionChooser[t][d] picks a non-empty region for domain d in tier
	// t with home regions strongly preferred.
	regionChooser [][]*regionPick
	// regionDatasets[t][r] lists dataset indices of tier t in region r;
	// regionZipf[t][r] picks among them with rank skew.
	regionDatasets [][][]int

	domainChooser *dist.WeightedChoice
	dayChooser    *dist.WeightedChoice

	homeRegions [][]int // per domain

	fileCount int
	// hotFiles are the planted case-study files (empty when the hot
	// filecule is disabled).
	hotFiles []trace.FileID
}

type regionPick struct {
	regions []int
	choose  *dist.WeightedChoice
}

func (g *generator) buildSites() {
	c := g.cfg
	g.domainSites = make([][]trace.SiteID, len(c.Domains))
	g.siteNodes = make(map[trace.SiteID][]string)
	weights := make([]float64, len(c.Domains))
	for d := range c.Domains {
		dom := &c.Domains[d]
		weights[d] = dom.Weight
		base := strings.TrimPrefix(dom.Domain, ".")
		nsites := dom.Sites
		if nsites < 1 {
			nsites = 1
		}
		for s := 0; s < nsites; s++ {
			name := fmt.Sprintf("%s-%d", base, s)
			id := g.b.Site(name, dom.Domain, 0)
			g.domainSites[d] = append(g.domainSites[d], id)
		}
		nodes := dom.Nodes
		if nodes < nsites {
			nodes = nsites
		}
		for n := 0; n < nodes; n++ {
			site := g.domainSites[d][n%nsites]
			g.siteNodes[site] = append(g.siteNodes[site], fmt.Sprintf("node%d.%s-%d", n, base, n%nsites))
		}
	}
	g.domainChooser = dist.NewWeightedChoice(weights)
}

func (g *generator) buildUsers() {
	c := g.cfg
	us := c.userScale()
	nTiers := len(c.Tiers)
	g.domainUsers = make([][]int, len(c.Domains))
	g.usersByDomainTier = make([][][]int, len(c.Domains))
	g.usersByTier = make([][]int, nTiers)
	for d := range c.Domains {
		g.usersByDomainTier[d] = make([][]int, nTiers)
		n := scaleCount(c.Domains[d].Users, us, 1)
		for k := 0; k < n; k++ {
			idx := len(g.users)
			site := g.domainSites[d][k%len(g.domainSites[d])]
			id := g.b.User(fmt.Sprintf("u%d", idx), site)
			u := userInfo{id: id, site: site, domain: d, active: make([]bool, nTiers)}
			anyActive := false
			for t := range c.Tiers {
				if g.rng.Float64() < c.Tiers[t].ActiveUserFrac {
					u.active[t] = true
					anyActive = true
				}
			}
			if !anyActive {
				// Every user works in at least one tier; pick the
				// most populous.
				best, bestFrac := 0, 0.0
				for t := range c.Tiers {
					if c.Tiers[t].ActiveUserFrac > bestFrac {
						best, bestFrac = t, c.Tiers[t].ActiveUserFrac
					}
				}
				u.active[best] = true
			}
			g.users = append(g.users, u)
			g.domainUsers[d] = append(g.domainUsers[d], idx)
			for t := range c.Tiers {
				if u.active[t] {
					g.usersByDomainTier[d][t] = append(g.usersByDomainTier[d][t], idx)
					g.usersByTier[t] = append(g.usersByTier[t], idx)
				}
			}
		}
	}
	// Guarantee every tier has at least one active user somewhere.
	for t := range c.Tiers {
		if len(g.usersByTier[t]) == 0 {
			g.users[0].active[t] = true
			g.usersByTier[t] = append(g.usersByTier[t], 0)
			d := g.users[0].domain
			g.usersByDomainTier[d][t] = append(g.usersByDomainTier[d][t], 0)
		}
	}
}

func (g *generator) buildDatasets() {
	c := g.cfg
	g.datasets = make([][]dataset, len(c.Tiers))
	g.regionDatasets = make([][][]int, len(c.Tiers))
	for t := range c.Tiers {
		tp := &c.Tiers[t]
		filesTarget := int(math.Round(float64(tp.Files) * c.Scale))
		nDatasets := int(math.Round(float64(filesTarget) / c.MeanFilesPerDataset))
		if nDatasets < 1 {
			nDatasets = 1
		}
		nFiles := dist.LognormalFromMean(c.MeanFilesPerDataset, c.FilesPerDatasetSigma)
		size := dist.LognormalFromMean(tp.MeanFileSizeMB, tp.FileSizeSigma)
		g.regionDatasets[t] = make([][]int, c.InterestRegions)
		for ds := 0; ds < nDatasets; ds++ {
			n := dist.ClampInt(nFiles.Sample(g.rng), 1, 5000)
			d := dataset{region: g.rng.Intn(c.InterestRegions)}
			for k := 0; k < n; k++ {
				mb := size.Sample(g.rng)
				bytes := dist.ClampInt64(mb*(1<<20), 1<<20, int64(tp.MaxFileSizeMB*(1<<20)))
				name := fmt.Sprintf("t%d-d%d-f%d", t, ds, k)
				d.files = append(d.files, g.b.File(name, bytes, tp.Tier))
				g.fileCount++
			}
			g.datasets[t] = append(g.datasets[t], d)
			g.regionDatasets[t][d.region] = append(g.regionDatasets[t][d.region], ds)
		}
	}
}

func (g *generator) buildInterests() {
	c := g.cfg
	// Home regions per domain.
	g.homeRegions = make([][]int, len(c.Domains))
	for d := range c.Domains {
		perm := g.rng.Perm(c.InterestRegions)
		g.homeRegions[d] = perm[:c.HomeRegions]
	}
	// Region choosers per (tier, domain), restricted to non-empty
	// regions.
	g.regionChooser = make([][]*regionPick, len(c.Tiers))
	for t := range c.Tiers {
		g.regionChooser[t] = make([]*regionPick, len(c.Domains))
		var nonEmpty []int
		for r := 0; r < c.InterestRegions; r++ {
			if len(g.regionDatasets[t][r]) > 0 {
				nonEmpty = append(nonEmpty, r)
			}
		}
		for d := range c.Domains {
			home := make(map[int]bool, len(g.homeRegions[d]))
			for _, r := range g.homeRegions[d] {
				home[r] = true
			}
			weights := make([]float64, len(nonEmpty))
			for i, r := range nonEmpty {
				if home[r] {
					weights[i] = 1
				} else {
					weights[i] = c.ForeignInterestWeight
				}
			}
			g.regionChooser[t][d] = &regionPick{
				regions: nonEmpty,
				choose:  dist.NewWeightedChoice(weights),
			}
		}
	}
	// Per-user interest lists.
	interestSize := dist.LognormalFromMean(c.UserInterestDatasets, 0.7)
	for ui := range g.users {
		u := &g.users[ui]
		u.interests = make([][]int, len(c.Tiers))
		for t := range c.Tiers {
			if !u.active[t] {
				continue
			}
			m := dist.ClampInt(interestSize.Sample(g.rng), 1, len(g.datasets[t]))
			u.interests[t] = g.sampleInterest(t, u.domain, m)
		}
	}
}

// sampleInterest draws up to m distinct datasets for a (tier, domain) pair,
// preferring home regions and popular (low-index) datasets within a region.
func (g *generator) sampleInterest(t, domain, m int) []int {
	rp := g.regionChooser[t][domain]
	seen := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for tries := 0; len(out) < m && tries < 6*m+20; tries++ {
		r := rp.regions[rp.choose.Choose(g.rng)]
		pool := g.regionDatasets[t][r]
		z := dist.NewZipf(g.cfg.InterestZipfS, uint64(len(pool)))
		ds := pool[int(z.Rank(g.rng))]
		if _, dup := seen[ds]; dup {
			continue
		}
		seen[ds] = struct{}{}
		out = append(out, ds)
	}
	return out
}

func (g *generator) buildDayChooser() {
	c := g.cfg
	weights := make([]float64, c.Days)
	startDay := int(c.Start.Weekday())
	for i := range weights {
		w := 0.6 + 0.8*float64(i)/float64(c.Days) // long-term ramp-up
		w *= 1 + 0.35*math.Sin(2*math.Pi*float64(i)/30.0)
		if wd := (startDay + i) % 7; wd == 0 || wd == 6 {
			w *= 0.7 // weekend dip
		}
		weights[i] = w
	}
	g.dayChooser = dist.NewWeightedChoice(weights)
}

// jobStart samples an arrival time from the daily profile.
func (g *generator) jobStart() time.Time {
	day := g.dayChooser.Choose(g.rng)
	return g.cfg.Start.Add(time.Duration(day)*24*time.Hour +
		time.Duration(g.rng.Int63n(int64(24*time.Hour))))
}

// pickUser selects a user for a job in the given tier, following the
// per-domain activity weights.
func (g *generator) pickUser(tier int) *userInfo {
	d := g.domainChooser.Choose(g.rng)
	pool := g.usersByDomainTier[d][tier]
	if len(pool) == 0 {
		pool = g.usersByTier[tier]
	}
	return &g.users[pool[g.rng.Intn(len(pool))]]
}

var tierApps = map[trace.Tier]string{
	trace.TierReconstructed: "d0_analyze_reco",
	trace.TierRootTuple:     "root_analyze",
	trace.TierThumbnail:     "d0_analyze_tmb",
}

// tierPhase builds tier t's analysis-job run. Construction draws no
// randomness; every RNG draw happens inside make.
func (g *generator) tierPhase(t int) jobPhase {
	c := g.cfg
	tp := &c.Tiers[t]
	nJobs := scaleCount(tp.Jobs, c.Scale, 1)
	duration := dist.LognormalFromMean(tp.MeanJobHours, 0.8)
	nDatasets := dist.LognormalFromMean(tp.MeanDatasetsPerJob, 0.9)
	app := tierApps[tp.Tier]
	if app == "" {
		app = "d0_analyze"
	}
	return jobPhase{n: nJobs, make: func() trace.Job {
		u := g.pickUser(t)
		interest := u.interests[t]
		files := g.jobFiles(t, u.domain, interest, dist.ClampInt(nDatasets.Sample(g.rng), 1, 80))
		start := g.jobStart()
		hours := duration.Sample(g.rng)
		end := start.Add(time.Duration(dist.ClampInt64(hours*float64(time.Hour), int64(3*time.Minute), int64(200*time.Hour))))
		return trace.Job{
			User: u.id, Site: u.site,
			Node:   g.pickNode(u.site),
			Tier:   tp.Tier,
			Family: trace.FamilyAnalysis,
			App:    app, Version: fmt.Sprintf("v%d", 1+g.rng.Intn(5)),
			Start: start, End: end,
			Files: files,
		}
	}}
}

// jobFiles assembles the input set: nDS datasets drawn from the user's
// interest list with rank skew (plus occasional exploration picks from the
// wider catalog), each read whole or as a contiguous subset.
func (g *generator) jobFiles(tier, domain int, interest []int, nDS int) []trace.FileID {
	if len(interest) == 0 {
		return nil
	}
	z := dist.NewZipf(g.cfg.JobZipfS, uint64(len(interest)))
	chosen := make(map[int]struct{}, nDS)
	var files []trace.FileID
	for tries := 0; len(chosen) < nDS && tries < 6*nDS+20; tries++ {
		var ds int
		if g.rng.Float64() < g.cfg.ExploreProb {
			// Exploration: a dataset outside the routine interest
			// set, uniform within a home-biased region.
			rp := g.regionChooser[tier][domain]
			pool := g.regionDatasets[tier][rp.regions[rp.choose.Choose(g.rng)]]
			ds = pool[g.rng.Intn(len(pool))]
		} else {
			ds = interest[int(z.Rank(g.rng))]
		}
		if _, dup := chosen[ds]; dup {
			continue
		}
		chosen[ds] = struct{}{}
		dsFiles := g.datasets[tier][ds].files
		if g.rng.Float64() < g.cfg.SubsetProb && len(dsFiles) > 1 {
			lo := g.rng.Intn(len(dsFiles))
			hi := lo + 1 + g.rng.Intn(len(dsFiles)-lo)
			dsFiles = dsFiles[lo:hi]
		}
		if g.cfg.ShuffleWithinDataset && len(dsFiles) > 1 {
			shuffled := append([]trace.FileID(nil), dsFiles...)
			g.rng.Shuffle(len(shuffled), func(a, b int) {
				shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
			})
			dsFiles = shuffled
		}
		files = append(files, dsFiles...)
	}
	return files
}

func (g *generator) pickNode(site trace.SiteID) string {
	nodes := g.siteNodes[site]
	return nodes[g.rng.Intn(len(nodes))]
}

// otherPhase builds the non-analysis background run (n may be zero).
func (g *generator) otherPhase() jobPhase {
	c := g.cfg
	n := scaleCount(c.OtherJobs, c.Scale, 0)
	duration := dist.LognormalFromMean(c.OtherJobHours, 0.8)
	families := []trace.AppFamily{trace.FamilyReconstruction, trace.FamilyMonteCarlo, trace.FamilyAnalysis}
	apps := []string{"d0reco", "mc_runjob", "d0_merge"}
	return jobPhase{n: n, make: func() trace.Job {
		d := g.domainChooser.Choose(g.rng)
		pool := g.domainUsers[d]
		u := &g.users[pool[g.rng.Intn(len(pool))]]
		start := g.jobStart()
		hours := duration.Sample(g.rng)
		end := start.Add(time.Duration(dist.ClampInt64(hours*float64(time.Hour), int64(3*time.Minute), int64(200*time.Hour))))
		fi := g.rng.Intn(len(families))
		return trace.Job{
			User: u.id, Site: u.site,
			Node:   g.pickNode(u.site),
			Tier:   trace.TierOther,
			Family: families[fi],
			App:    apps[fi], Version: fmt.Sprintf("v%d", 1+g.rng.Intn(5)),
			Start: start, End: end,
		}
	}}
}

// plantHotFiles creates the Section 5 case-study files: two ~1.1 GB
// thumbnail files always requested together. The job run that requests them
// is hotPhase; splitting creation from use keeps the file catalog complete
// before any job is emitted.
func (g *generator) plantHotFiles() {
	if !g.cfg.PlantHotFilecule {
		return
	}
	f1 := g.b.File("hot-tmb-0", int64(11)*(1<<30)/10, trace.TierThumbnail)
	f2 := g.b.File("hot-tmb-1", int64(11)*(1<<30)/10, trace.TierThumbnail)
	g.hotFiles = []trace.FileID{f1, f2}
}

// hotPhase builds the case-study job run: a pool of users concentrated at
// FermiLab (.gov) plus a handful of remote domains repeatedly requests both
// hot files. Because no other job ever touches these files and every hot job
// reads both, they form exactly one 2-file filecule.
func (g *generator) hotPhase() jobPhase {
	c := g.cfg
	if len(g.hotFiles) == 0 {
		return jobPhase{}
	}

	// User pool: the paper observes 42 users from 6 sites, 38 of them at
	// FermiLab. Scale the pool with the user population.
	us := c.userScale()
	wantGov := scaleCount(38, us, 2)
	wantOther := scaleCount(4, us, 4) // at least one user in a few remote domains
	var pool []int
	gov := g.domainUsers[0]
	for i := 0; i < len(gov) && i < wantGov; i++ {
		pool = append(pool, gov[i])
	}
	added := 0
	for d := 1; d < len(g.domainUsers) && added < wantOther; d++ {
		if len(g.domainUsers[d]) == 0 {
			continue
		}
		pool = append(pool, g.domainUsers[d][0])
		added++
	}
	if len(pool) == 0 {
		return jobPhase{}
	}

	nJobs := scaleCount(c.HotJobs, c.Scale, 3*len(pool))
	// 529 of 634 observed jobs came from FermiLab; weight accordingly.
	weights := make([]float64, len(pool))
	for i := range pool {
		if g.users[pool[i]].domain == 0 {
			weights[i] = float64(529) / float64(wantGov)
		} else {
			weights[i] = float64(634-529) / float64(wantOther)
		}
	}
	choose := dist.NewWeightedChoice(weights)
	duration := dist.LognormalFromMean(2.0, 0.6)
	return jobPhase{n: nJobs, make: func() trace.Job {
		u := &g.users[pool[choose.Choose(g.rng)]]
		start := g.jobStart()
		hours := duration.Sample(g.rng)
		end := start.Add(time.Duration(dist.ClampInt64(hours*float64(time.Hour), int64(3*time.Minute), int64(24*time.Hour))))
		return trace.Job{
			User: u.id, Site: u.site,
			Node:   g.pickNode(u.site),
			Tier:   trace.TierThumbnail,
			Family: trace.FamilyAnalysis,
			App:    "d0_analyze_tmb", Version: "v1",
			Start: start, End: end,
			Files: g.hotFiles,
		}
	}}
}
