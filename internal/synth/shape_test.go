package synth

import (
	"io"
	"testing"
	"time"

	"filecule/internal/trace"
)

func TestParseShapeMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ShapeMode
		ok   bool
	}{
		{"", ShapeNone, true},
		{"none", ShapeNone, true},
		{"ramp", ShapeRamp, true},
		{"sweep", ShapeSweep, true},
		{"burst", ShapeBurst, true},
		{"spike", ShapeNone, false},
	} {
		got, err := ParseShapeMode(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseShapeMode(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseShapeMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if err == nil {
			if rt, err2 := ParseShapeMode(got.String()); err2 != nil || rt != got {
				t.Errorf("mode %v does not round-trip through String: %v %v", got, rt, err2)
			}
		}
	}
}

func TestShapeValidate(t *testing.T) {
	good := Shape{Mode: ShapeRamp, StartRPS: 1, TargetRPS: 10, StepRPS: 1, Slot: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	if err := (Shape{}).Validate(); err != nil {
		t.Fatalf("zero (none) shape rejected: %v", err)
	}
	bad := []Shape{
		{Mode: ShapeRamp, StartRPS: 0, TargetRPS: 10, StepRPS: 1, Slot: time.Second},
		{Mode: ShapeRamp, StartRPS: 1, TargetRPS: -1, StepRPS: 1, Slot: time.Second},
		{Mode: ShapeRamp, StartRPS: 1, TargetRPS: 10, StepRPS: 0, Slot: time.Second},
		{Mode: ShapeSweep, StartRPS: 1, TargetRPS: 10, StepRPS: -2, Slot: time.Second},
		{Mode: ShapeBurst, StartRPS: 1, TargetRPS: 10, Slot: 0},
	}
	for i, sh := range bad {
		if err := sh.Validate(); err == nil {
			t.Errorf("bad shape %d accepted: %+v", i, sh)
		}
	}
}

func TestShapeRateRamp(t *testing.T) {
	sh := Shape{Mode: ShapeRamp, StartRPS: 2, TargetRPS: 10, StepRPS: 3, Slot: time.Second}
	want := []float64{2, 5, 8, 10, 10, 10}
	for k, w := range want {
		if got := sh.rate(int64(k)); got != w {
			t.Errorf("ramp rate(%d) = %v, want %v", k, got, w)
		}
	}
	// Ramp down.
	down := Shape{Mode: ShapeRamp, StartRPS: 10, TargetRPS: 2, StepRPS: 3, Slot: time.Second}
	wantDown := []float64{10, 7, 4, 2, 2}
	for k, w := range wantDown {
		if got := down.rate(int64(k)); got != w {
			t.Errorf("ramp-down rate(%d) = %v, want %v", k, got, w)
		}
	}
}

func TestShapeRateSweep(t *testing.T) {
	sh := Shape{Mode: ShapeSweep, StartRPS: 1, TargetRPS: 5, StepRPS: 2, Slot: time.Second}
	// span=4, steps=2 → period 4: 1,3,5,3, 1,3,5,3, ...
	want := []float64{1, 3, 5, 3, 1, 3, 5, 3, 1}
	for k, w := range want {
		if got := sh.rate(int64(k)); got != w {
			t.Errorf("sweep rate(%d) = %v, want %v", k, got, w)
		}
	}
	// Sweep never leaves [lo, hi] over a long horizon.
	for k := int64(0); k < 1000; k++ {
		r := sh.rate(k)
		if r < 1 || r > 5 {
			t.Fatalf("sweep rate(%d) = %v outside [1,5]", k, r)
		}
	}
}

func TestShapeRateBurst(t *testing.T) {
	sh := Shape{Mode: ShapeBurst, StartRPS: 1, TargetRPS: 100, Slot: time.Second}
	for k := int64(0); k < 10; k++ {
		want := 1.0
		if k%2 == 1 {
			want = 100
		}
		if got := sh.rate(k); got != want {
			t.Errorf("burst rate(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestPacerOffsets(t *testing.T) {
	// Constant 2 RPS: offsets are 0, 0.5s, 1.0s, 1.5s, ...
	p := NewPacer(Shape{Mode: ShapeRamp, StartRPS: 2, TargetRPS: 2, StepRPS: 1, Slot: time.Second})
	for i := 0; i < 6; i++ {
		got := p.Next()
		want := time.Duration(i) * 500 * time.Millisecond
		if got != want {
			t.Errorf("pacer offset %d = %v, want %v", i, got, want)
		}
	}
	// ShapeNone paces everything at offset 0.
	n := NewPacer(Shape{})
	for i := 0; i < 3; i++ {
		if got := n.Next(); got != 0 {
			t.Errorf("none pacer offset %d = %v, want 0", i, got)
		}
	}
	// Offsets are strictly increasing for any real schedule.
	b := NewPacer(Shape{Mode: ShapeBurst, StartRPS: 1, TargetRPS: 50, Slot: time.Second})
	prev := time.Duration(-1)
	for i := 0; i < 500; i++ {
		off := b.Next()
		if off <= prev {
			t.Fatalf("burst pacer offset %d = %v not increasing (prev %v)", i, off, prev)
		}
		prev = off
	}
}

// TestReshapePreservesEverythingButTime proves shaping only rewrites
// arrival times: same jobs, same order, same file lists, same durations.
func TestReshapePreservesEverythingButTime(t *testing.T) {
	cfg := DZero(7, 0.01)
	plain, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	sh := Shape{Mode: ShapeSweep, StartRPS: 5, TargetRPS: 50, StepRPS: 5, Slot: 10 * time.Second}
	shaped, err := Reshape(src, sh, epoch)
	if err != nil {
		t.Fatal(err)
	}
	defer shaped.Close()

	if len(shaped.Files()) != len(plain.Files()) {
		t.Fatalf("file catalog changed: %d vs %d", len(shaped.Files()), len(plain.Files()))
	}
	prev := time.Time{}
	n := 0
	for {
		pj, perr := plain.Next()
		sj, serr := shaped.Next()
		if perr == io.EOF || serr == io.EOF {
			if perr != serr {
				t.Fatalf("streams ended at different points: %v vs %v", perr, serr)
			}
			break
		}
		if perr != nil || serr != nil {
			t.Fatal(perr, serr)
		}
		if sj.ID != pj.ID || sj.User != pj.User || sj.Site != pj.Site {
			t.Fatalf("job %d identity changed: %+v vs %+v", n, sj, pj)
		}
		if len(sj.Files) != len(pj.Files) {
			t.Fatalf("job %d file count changed", n)
		}
		for i := range sj.Files {
			if sj.Files[i] != pj.Files[i] {
				t.Fatalf("job %d file %d changed", n, i)
			}
		}
		if sj.End.Sub(sj.Start) != pj.End.Sub(pj.Start) {
			t.Fatalf("job %d duration changed: %v vs %v", n, sj.End.Sub(sj.Start), pj.End.Sub(pj.Start))
		}
		if sj.Start.Before(prev) {
			t.Fatalf("shaped job %d start %v before previous %v", n, sj.Start, prev)
		}
		if sj.Start.Before(epoch) {
			t.Fatalf("shaped job %d starts before epoch", n)
		}
		prev = sj.Start
		n++
	}
	if n == 0 {
		t.Fatal("no jobs compared")
	}
}

// TestReshapeNoneIsIdentity: ShapeNone returns the source unchanged.
func TestReshapeNoneIsIdentity(t *testing.T) {
	src, err := NewSource(DZero(1, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	out, err := Reshape(src, Shape{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if out != src {
		t.Fatal("ShapeNone reshape did not return the identical source")
	}
}

// TestGenerateShaped: materialized shaped trace validates, start-sorted,
// and is deterministic across runs.
func TestGenerateShaped(t *testing.T) {
	sh := Shape{Mode: ShapeBurst, StartRPS: 2, TargetRPS: 40, Slot: 30 * time.Second}
	epoch := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func() *trace.Trace {
		src, err := NewSource(DZero(3, 0.01))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := GenerateShaped(src, sh, epoch)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(), mk()
	if err := a.Validate(); err != nil {
		t.Fatalf("shaped trace invalid: %v", err)
	}
	if len(a.Jobs) != len(b.Jobs) || len(a.Jobs) == 0 {
		t.Fatalf("nondeterministic job count: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if !a.Jobs[i].Start.Equal(b.Jobs[i].Start) {
			t.Fatalf("job %d start differs across runs", i)
		}
	}
	// Throughput actually follows the schedule: the burst slots hold 20×
	// the jobs of baseline slots, so slot occupancy must alternate.
	counts := map[int64]int{}
	for i := range a.Jobs {
		slot := int64(a.Jobs[i].Start.Sub(epoch) / (30 * time.Second))
		counts[slot]++
	}
	if counts[1] <= counts[0] || counts[3] <= counts[2] {
		t.Fatalf("burst slots not denser than baseline: %v", counts)
	}
}
