package wire

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"filecule/internal/cache"
	"filecule/internal/core"
	"filecule/internal/trace"
)

// Backend is what a wire Server serves from. internal/server implements it
// over its monitor/durability/advice stack so both protocol surfaces answer
// from exactly the same state and decision kernels — the property the
// differential tests pin.
type Backend interface {
	// Observe folds one job. An error is an internal failure (WAL append),
	// answered as code 500; the job was not applied.
	Observe(files []trace.FileID) error
	// ObserveBatch folds several jobs atomically with respect to durability.
	ObserveBatch(jobs [][]trace.FileID) error
	// Counts reports ingestion progress for observe acknowledgements.
	Counts() (observed int64, filecules int)
	// Granularity returns the advice granularity for the current snapshot.
	// An error means advice is unavailable (no catalog), answered as 422.
	// Implementations cache the granularity per snapshot, so consecutive
	// calls return the identical value until the partition changes.
	Granularity() (cache.Granularity, error)
	// PartitionState returns the current snapshot, the observed count, and
	// the catalog for byte sizing (nil when the server has no catalog).
	PartitionState() (p *core.Partition, observed int64, catalog *trace.Trace)
}

// Server serves filecule-wire/v1 over persistent TCP connections. Each
// connection is handled by one goroutine with fully pooled decode/encode
// state: the steady-state observe path performs zero allocations per
// request.
type Server struct {
	Backend Backend
	// MaxFiles bounds request file IDs to [0, MaxFiles); <= 0 accepts any
	// non-negative int32 ID, mirroring the catalog-less HTTP surface.
	MaxFiles int
	// MaxBatchJobs caps jobs per 'B' request; <= 0 means DefaultMaxBatchJobs.
	MaxBatchJobs int
	// MaxJobFiles caps one job's expanded file list; <= 0 means
	// DefaultMaxJobFiles.
	MaxJobFiles int
	// MaxBatchFiles caps the total expanded file IDs across one 'B'
	// request, bounding the run-length amplification of a whole batch;
	// <= 0 means DefaultMaxBatchFiles.
	MaxBatchFiles int
	// IdleTimeout bounds the wait for the next request frame (and the
	// arrival of a frame's bytes once started — the slowloris guard);
	// <= 0 means 120s.
	IdleTimeout time.Duration
	// MaxPipeline bounds the responses a connection may have pending
	// (answered but not yet flushed to the socket): a client pipelining
	// more than this many requests without draining responses forces a
	// flush, which blocks the connection's frame loop until the client
	// reads — per-connection backpressure instead of unbounded response
	// queueing. <= 0 means DefaultMaxPipeline.
	MaxPipeline int
	// WriteTimeout bounds each flush of buffered responses; a client that
	// stops draining for this long is disconnected rather than pinning the
	// server goroutine. <= 0 means 60s.
	WriteTimeout time.Duration
	// Metrics, when set, records every request under routes
	// "wire_observe", "wire_observe_batch", "wire_advise" and
	// "wire_partition" with an HTTP-aligned status code.
	Metrics func(route string, code int, d time.Duration)
}

func (s *Server) maxID() int64 {
	if s.MaxFiles > 0 {
		return int64(s.MaxFiles)
	}
	return maxAnyFileID
}

func (s *Server) maxBatch() int {
	if s.MaxBatchJobs > 0 {
		return s.MaxBatchJobs
	}
	return DefaultMaxBatchJobs
}

func (s *Server) maxJobFiles() int {
	if s.MaxJobFiles > 0 {
		return s.MaxJobFiles
	}
	return DefaultMaxJobFiles
}

func (s *Server) maxBatchFiles() int {
	if s.MaxBatchFiles > 0 {
		return s.MaxBatchFiles
	}
	return DefaultMaxBatchFiles
}

func (s *Server) idle() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return 120 * time.Second
}

// DefaultMaxPipeline is the per-connection bound on answered-but-unflushed
// pipelined responses when Server.MaxPipeline is unset.
const DefaultMaxPipeline = 64

func (s *Server) maxPipeline() int {
	if s.MaxPipeline > 0 {
		return s.MaxPipeline
	}
	return DefaultMaxPipeline
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return 60 * time.Second
}

// Serve accepts connections on l until ctx is cancelled, then closes the
// listener and every open connection. A binary client observing a closed
// connection simply reconnects; there is no drain protocol. Returns nil on
// clean shutdown.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
		wg    sync.WaitGroup
	)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
			mu.Lock()
			for c := range conns {
				c.Close()
			}
			mu.Unlock()
		case <-done:
		}
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		mu.Lock()
		// Re-check cancellation under mu: a connection Accept returned just
		// before shutdown may otherwise register after the closer goroutine
		// has already swept the map, leaving it open until the idle timeout.
		if ctx.Err() != nil {
			mu.Unlock()
			conn.Close()
			continue
		}
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

// connState is the per-connection pool: every buffer a request decode or
// response encode needs, reused frame after frame.
type connState struct {
	pl       trace.Payload
	files    []trace.FileID
	jobFiles []trace.FileID // backing store for a batch's file lists
	jobEnds  []int          // end offset of each job within jobFiles
	jobs     [][]trace.FileID
	resident []cache.ResidentUnit
	fcs      []fcView
	out      []byte
	planner  *cache.Planner
}

// connDeadlines re-arms a connection's read deadline before each request
// frame and its write deadline before each flush of buffered responses.
// serveStream accepts nil (no deadlines) for in-memory streams and fuzzing.
type connDeadlines struct {
	read  func()
	write func()
}

func (s *Server) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(s.idle()))
	br := bufio.NewReaderSize(conn, 64<<10)
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != Magic {
		var out []byte
		out = appendError(out, CodeBadRequest, fmt.Sprintf("bad connection magic, want %q", Magic))
		bw := bufio.NewWriter(conn)
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		trace.WriteChunk(bw, out)
		bw.Flush()
		return
	}
	bw := bufio.NewWriterSize(conn, 64<<10)
	dl := &connDeadlines{
		read:  func() { conn.SetReadDeadline(time.Now().Add(s.idle())) },
		write: func() { conn.SetWriteDeadline(time.Now().Add(s.writeTimeout())) },
	}
	s.serveStream(&connState{}, br, bw, dl)
}

// serveStream runs the post-magic frame loop: read a request frame,
// dispatch, append the response, and flush once all buffered input is
// drained (so a pipelined burst of requests is answered with one write) or
// once MaxPipeline responses are pending — the per-connection backpressure
// bound: a hostile pipeliner that never drains blocks on its own
// connection (and is disconnected by the write deadline) instead of
// queueing responses without limit. dl, when non-nil, re-arms the
// connection deadlines. The returned error is nil on clean EOF.
func (s *Server) serveStream(st *connState, br *bufio.Reader, bw *bufio.Writer, dl *connDeadlines) error {
	cr := trace.NewChunkReader(br)
	flush := func() error {
		if dl != nil {
			dl.write()
		}
		return bw.Flush()
	}
	pending := 0
	for {
		if dl != nil {
			dl.read()
		}
		off := cr.Offset()
		kind, payload, err := cr.ReadChunk()
		if err == io.EOF {
			return flush()
		}
		if err != nil {
			// The frame boundary is lost; answer once and hang up.
			st.out = appendError(st.out[:0], CodeBadRequest, err.Error())
			trace.WriteChunk(bw, st.out)
			flush()
			return err
		}
		t0 := time.Now()
		resp, route, code := s.handle(st, kind, payload, off)
		if len(resp) > trace.MaxChunkPayload {
			resp = appendError(st.out[:0], CodeInternal,
				fmt.Sprintf("response exceeds the %d-byte frame bound", trace.MaxChunkPayload))
			code = CodeInternal
		}
		if err := trace.WriteChunk(bw, resp); err != nil {
			return err
		}
		if s.Metrics != nil {
			s.Metrics(route, code, time.Since(t0))
		}
		pending++
		if br.Buffered() == 0 || pending >= s.maxPipeline() {
			if err := flush(); err != nil {
				return err
			}
			pending = 0
		}
	}
}

// handle dispatches one request frame and returns the response payload
// (valid until the next call), the metrics route, and the HTTP-aligned
// status code. It never panics — the FuzzWireProto contract.
func (s *Server) handle(st *connState, kind byte, payload []byte, off int64) ([]byte, string, int) {
	st.pl.Reset(payload)
	switch kind {
	case KindObserve:
		return s.handleObserve(st, off)
	case KindObserveBatch:
		return s.handleBatch(st, off)
	case KindAdvise:
		return s.handleAdvise(st, off)
	case KindPartition:
		return s.handlePartition(st)
	case KindSummary:
		return s.handleSummary(st)
	case KindFilecule:
		return s.handleFilecule(st, off)
	default:
		return s.errResp(st, CodeBadRequest, "wire_unknown",
			"request frame at byte offset %d: unknown kind %q", off, kind), "wire_unknown", CodeBadRequest
	}
}

// errResp formats an error response into the pooled buffer.
func (s *Server) errResp(st *connState, code int, _ string, format string, args ...any) []byte {
	st.out = appendError(st.out[:0], code, fmt.Sprintf(format, args...))
	return st.out
}

// reqErr finalizes a request decode, converting a sticky cursor error or
// trailing bytes into a 400 naming the frame's byte offset.
func (st *connState) reqErr(off int64) error {
	if err := st.pl.Err(); err != nil {
		return fmt.Errorf("request frame at byte offset %d: %w", off, err)
	}
	if n := st.pl.Remaining(); n != 0 {
		return fmt.Errorf("request frame at byte offset %d: %d trailing bytes", off, n)
	}
	return nil
}

func (s *Server) handleObserve(st *connState, off int64) ([]byte, string, int) {
	const route = "wire_observe"
	st.files = st.pl.FileRuns(st.files[:0], s.maxID(), s.maxJobFiles())
	if err := st.reqErr(off); err != nil {
		return s.errResp(st, CodeBadRequest, route, "%v", err), route, CodeBadRequest
	}
	if err := s.Backend.Observe(st.files); err != nil {
		return s.errResp(st, CodeInternal, route, "wal append: %v", err), route, CodeInternal
	}
	observed, filecules := s.Backend.Counts()
	st.out = appendObserveResult(st.out[:0], observed, filecules)
	return st.out, route, 200
}

func (s *Server) handleBatch(st *connState, off int64) ([]byte, string, int) {
	const route = "wire_observe_batch"
	n := st.pl.Count("job")
	if err := st.pl.Err(); err == nil && n > s.maxBatch() {
		return s.errResp(st, CodeBadRequest, route,
			"batch of %d jobs exceeds limit %d", n, s.maxBatch()), route, CodeBadRequest
	}
	st.jobFiles = st.jobFiles[:0]
	st.jobEnds = st.jobEnds[:0]
	// Per-job decodes draw from a shrinking batch-wide budget, so the total
	// expansion of one 'B' frame is capped regardless of how tightly its
	// run-length encoding compresses: a job may use at most what the batch
	// cap has left. A job that trips the shrunken budget fails the decode
	// with a cursor error naming the limit, answered 400 below.
	maxTotal := s.maxBatchFiles()
	for i := 0; i < n && st.pl.Err() == nil; i++ {
		budget := maxTotal - len(st.jobFiles)
		if perJob := s.maxJobFiles(); budget > perJob {
			budget = perJob
		}
		st.jobFiles = st.pl.FileRuns(st.jobFiles, s.maxID(), budget)
		st.jobEnds = append(st.jobEnds, len(st.jobFiles))
	}
	if err := st.reqErr(off); err != nil {
		return s.errResp(st, CodeBadRequest, route, "%v", err), route, CodeBadRequest
	}
	// Re-slice after the full decode: appends may have grown jobFiles, so
	// job views are only stable now.
	st.jobs = st.jobs[:0]
	prev := 0
	for _, end := range st.jobEnds {
		st.jobs = append(st.jobs, st.jobFiles[prev:end:end])
		prev = end
	}
	if err := s.Backend.ObserveBatch(st.jobs); err != nil {
		return s.errResp(st, CodeInternal, route, "wal append: %v", err), route, CodeInternal
	}
	observed, filecules := s.Backend.Counts()
	st.out = appendObserveResult(st.out[:0], observed, filecules)
	return st.out, route, 200
}

func (s *Server) handleAdvise(st *connState, off int64) ([]byte, string, int) {
	const route = "wire_advise"
	capacity := int64(st.pl.Uvarint())
	st.files = st.pl.FileRuns(st.files[:0], s.maxID(), s.maxJobFiles())
	st.resident = st.resident[:0]
	for n := st.pl.Count("resident unit"); n > 0 && st.pl.Err() == nil; n-- {
		st.resident = append(st.resident, cache.ResidentUnit{
			Unit:       cache.UnitID(st.pl.Uvarint()),
			LastAccess: st.pl.Zvarint(),
		})
	}
	if err := st.reqErr(off); err != nil {
		return s.errResp(st, CodeBadRequest, route, "%v", err), route, CodeBadRequest
	}
	g, err := s.Backend.Granularity()
	if err != nil {
		return s.errResp(st, CodeUnavailable, route, "%v", err), route, CodeUnavailable
	}
	if st.planner == nil {
		st.planner = cache.NewPlanner(g)
	} else if st.planner.Granularity() != g {
		st.planner.Reset(g)
	}
	adv, err := st.planner.Advise(cache.AdviceRequest{
		Capacity: capacity,
		Files:    st.files,
		Resident: st.resident,
	})
	if err != nil {
		return s.errResp(st, CodeBadRequest, route, "%v", err), route, CodeBadRequest
	}
	st.out = appendAdviceResult(st.out[:0], adv)
	return st.out, route, 200
}

func (s *Server) handlePartition(st *connState) ([]byte, string, int) {
	const route = "wire_partition"
	// A 'P' payload is the bare kind byte; tolerate nothing else.
	if st.pl.Remaining() != 0 {
		return s.errResp(st, CodeBadRequest, route,
			"partition request carries %d unexpected bytes", st.pl.Remaining()), route, CodeBadRequest
	}
	p, observed, catalog := s.Backend.PartitionState()
	var sizes []int64
	if catalog != nil {
		sizes = p.SizeTable(catalog)
	}
	st.fcs = st.fcs[:0]
	for i := range p.Filecules {
		fc := &p.Filecules[i]
		v := fcView{files: fc.Files, requests: fc.Requests}
		if sizes != nil {
			v.bytes = sizes[i]
		}
		st.fcs = append(st.fcs, v)
	}
	st.out = appendPartitionResult(st.out[:0], st.fcs, observed)
	return st.out, route, 200
}

func (s *Server) handleSummary(st *connState) ([]byte, string, int) {
	const route = "wire_summary"
	// An 'S' payload is the bare kind byte; tolerate nothing else.
	if st.pl.Remaining() != 0 {
		return s.errResp(st, CodeBadRequest, route,
			"summary request carries %d unexpected bytes", st.pl.Remaining()), route, CodeBadRequest
	}
	p, observed, catalog := s.Backend.PartitionState()
	r := SummaryReply{Observed: observed, Filecules: p.NumFilecules(), Files: p.NumFiles()}
	var sizes []int64
	if catalog != nil {
		sizes = p.SizeTable(catalog)
	}
	for i := range p.Filecules {
		n := p.Filecules[i].NumFiles()
		if n == 1 {
			r.Monatomic++
		}
		if n > r.LargestFiles {
			r.LargestFiles = n
		}
		if sizes != nil {
			r.CoveredBytes += sizes[i]
		}
	}
	if p.NumFilecules() > 0 {
		r.MeanFilesPerGroup = float64(p.NumFiles()) / float64(p.NumFilecules())
	}
	st.out = appendSummaryResult(st.out[:0], &r)
	return st.out, route, 200
}

func (s *Server) handleFilecule(st *connState, off int64) ([]byte, string, int) {
	const route = "wire_filecule"
	id := st.pl.Uvarint()
	if st.pl.Err() == nil && int64(id) >= s.maxID() {
		return s.errResp(st, CodeBadRequest, route,
			"file ID %d out of range [0, %d)", id, s.maxID()), route, CodeBadRequest
	}
	if err := st.reqErr(off); err != nil {
		return s.errResp(st, CodeBadRequest, route, "%v", err), route, CodeBadRequest
	}
	p, _, catalog := s.Backend.PartitionState()
	fc := p.FileculeOf(trace.FileID(id))
	if fc == nil {
		return s.errResp(st, CodeNotFound, route,
			"file %d not observed in any job", id), route, CodeNotFound
	}
	var bytes int64
	if catalog != nil {
		bytes = p.SizeTable(catalog)[fc.ID]
	}
	st.out = appendFileculeResult(st.out[:0], fc.ID, fc.Requests, bytes, fc.Files)
	return st.out, route, 200
}
