package wire

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"filecule/internal/trace"
)

// TestHostilePipelining: a client that pipelines requests forever without
// ever reading responses must not pin the server goroutine or queue
// unbounded responses. With MaxPipeline reached, the forced flush blocks on
// the socket and the write deadline disconnects the client.
func TestHostilePipelining(t *testing.T) {
	srvConn, cliConn := net.Pipe()
	defer cliConn.Close()
	s := &Server{
		Backend:      newMemBackend(16, 10),
		MaxFiles:     16,
		MaxPipeline:  4,
		WriteTimeout: 100 * time.Millisecond,
		IdleTimeout:  5 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer srvConn.Close()
		s.handleConn(srvConn)
	}()

	// Write the magic and then pipeline requests without reading a single
	// response byte. net.Pipe is unbuffered, so our writes park once the
	// server stops reading; write them from a goroutine and only require
	// that the server hangs up.
	req := AppendObserveRequest(nil, []trace.FileID{0, 1, 2})
	go func() {
		cliConn.Write([]byte(Magic))
		var frame bytes.Buffer
		trace.WriteChunk(&frame, req)
		for i := 0; i < 1000; i++ {
			if _, err := cliConn.Write(frame.Bytes()); err != nil {
				return // server gave up on us, as it should
			}
		}
	}()

	select {
	case <-done:
		// Server disconnected the hostile client: backpressure held.
	case <-time.After(5 * time.Second):
		t.Fatal("server goroutine still pinned by a client that never reads")
	}
}

// TestPipelineCapStillAnswersEverything: a well-behaved client draining
// concurrently gets every response even when MaxPipeline is far smaller
// than the number of pipelined requests — the cap forces intermediate
// flushes, it never drops frames.
func TestPipelineCapStillAnswersEverything(t *testing.T) {
	const n = 64
	srvConn, cliConn := net.Pipe()
	s := &Server{
		Backend:      newMemBackend(16, 10),
		MaxFiles:     16,
		MaxPipeline:  2,
		WriteTimeout: 2 * time.Second,
		IdleTimeout:  5 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer srvConn.Close()
		s.handleConn(srvConn)
	}()

	var in bytes.Buffer
	in.WriteString(Magic)
	req := AppendObserveRequest(nil, []trace.FileID{1, 2})
	for i := 0; i < n; i++ {
		trace.WriteChunk(&in, req)
	}
	go func() { cliConn.Write(in.Bytes()) }()

	cr := trace.NewChunkReader(bufio.NewReader(cliConn))
	for i := 0; i < n; i++ {
		kind, payload, err := cr.ReadChunk()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if kind != KindObserveResult {
			t.Fatalf("response %d: kind %q, want %q", i, kind, KindObserveResult)
		}
		var pl trace.Payload
		pl.Reset(payload)
		if rep, err := decodeObserveReply(&pl); err != nil || rep.Observed != int64(i+1) {
			t.Fatalf("response %d: reply %+v err %v", i, rep, err)
		}
	}
	cliConn.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server goroutine did not exit after client close")
	}
}
