// Package wire implements filecule-wire/v1, the binary request/response
// protocol the serving layer speaks over persistent TCP connections. The
// engine observes a job in ~200 ns with zero allocations; over HTTP/JSON the
// same job pays orders of magnitude more in framing, header parsing and
// marshalling. This protocol removes that tax: one CRC-framed binary chunk
// per request, one per response, run-length-encoded file lists, and strict
// FIFO pipelining so a client can keep many requests in flight on one
// connection.
//
// A connection is:
//
//	magic := "filecule-wire/v1\n"        (client sends once)
//	then alternating streams of frames   (requests in, responses out, FIFO)
//
// where every frame is the CRC32C chunk shared with filecule-bin/v1 and the
// durability formats (internal/trace):
//
//	frame := uvarint(len(payload)) payload crc32c(payload, 4B LE)
//
// and payload[0] is the message kind. Responses come back in request order,
// so a client may write any number of requests before reading a response
// (batched pipelining); the server flushes its write buffer whenever it has
// drained all buffered input, amortizing syscalls across a pipeline burst.
//
// Request kinds and payloads (all integers varint unless noted; file lists
// use the run-length encoding of trace.AppendFileRuns):
//
//	'O' observe         fileRuns
//	'B' observe batch   uvarint(njobs), njobs × fileRuns
//	'A' advise          uvarint(capacityBytes), fileRuns,
//	                    uvarint(nresident), nresident × (uvarint(unit), zvarint(lastAccess))
//	'P' partition       (empty)
//	'S' summary         (empty)
//	'F' filecule        uvarint(fileID)
//
// Response kinds:
//
//	'o' observe result  uvarint(observed), uvarint(filecules)
//	'a' advice          uvarint(nhits), nhits × uvarint(unit),
//	                    uvarint(nload), nload × (uvarint(unit), uvarint(bytes), fileRuns),
//	                    uvarint(nevict), nevict × uvarint(unit),
//	                    fileRuns(bypassed), uvarint(bytesToLoad), uvarint(bytesToEvict)
//	'p' partition       uvarint(observed), uvarint(nfilecules),
//	                    nfilecules × (uvarint(requests), uvarint(bytes), fileRuns)
//	                    (filecule IDs are the 0-based position, canonical order)
//	's' summary         uvarint(observed), uvarint(filecules), uvarint(files),
//	                    uvarint(monatomic), meanFilesPerFilecule
//	                    (IEEE-754 bits, 8B LE), uvarint(largestFiles),
//	                    uvarint(coveredBytes)
//	'f' filecule        uvarint(id), uvarint(requests), uvarint(bytes), fileRuns
//	'e' error           uvarint(code), uvarint(len), len × msg bytes
//
// Malformed request payloads (bad varints, out-of-range file IDs, trailing
// bytes) are per-request failures: the server answers 'e' with the frame's
// byte offset in the message and keeps the connection. Broken framing
// (truncation, CRC mismatch, oversized chunks) is unrecoverable — the frame
// boundary itself is lost — so the server answers one final 'e' and closes.
// Error codes align with the HTTP surface: 400 bad request, 404 file not
// observed, 422 advice unavailable, 500 internal.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"filecule/internal/cache"
	"filecule/internal/trace"
)

// Magic is the connection preamble the client sends once after dialing.
const Magic = "filecule-wire/v1\n"

// Request kinds.
const (
	KindObserve      = 'O'
	KindObserveBatch = 'B'
	KindAdvise       = 'A'
	KindPartition    = 'P'
	KindSummary      = 'S'
	KindFilecule     = 'F'
)

// Response kinds.
const (
	KindObserveResult   = 'o'
	KindAdviceResult    = 'a'
	KindPartitionResult = 'p'
	KindSummaryResult   = 's'
	KindFileculeResult  = 'f'
	KindError           = 'e'
)

// Error codes carried by 'e' responses, aligned with the HTTP status the
// JSON surface would answer for the same failure.
const (
	CodeBadRequest  = 400
	CodeNotFound    = 404
	CodeUnavailable = 422
	CodeInternal    = 500
)

// maxAnyFileID bounds file IDs when no catalog is configured, mirroring the
// HTTP layer's "any non-negative int32" acceptance.
const maxAnyFileID = 1 << 31

// DefaultMaxJobFiles caps one job's expanded file list. The HTTP surface
// caps bodies at 32 MiB of JSON, which bounds a job to a few million file
// IDs; this is the binary equivalent.
const DefaultMaxJobFiles = 1 << 22

// DefaultMaxBatchJobs caps jobs per 'B' request, matching the JSON API's
// batch limit.
const DefaultMaxBatchJobs = 10000

// DefaultMaxBatchFiles caps the total expanded file IDs across one 'B'
// request. The per-job and per-batch caps alone are not enough: run-length
// encoding lets ~6 bytes expand to a full job's worth of IDs, so a ~70 KB
// frame could otherwise legally decode to jobs × jobFiles ≈ 4e10 IDs. A
// 32 MiB JSON batch body spends ≥ 2 bytes per ID, bounding it to ~16M
// files; this is the binary equivalent.
const DefaultMaxBatchFiles = 1 << 24

// --- request encoders (client side; also the fuzz seed builders) ---

// AppendObserveRequest appends an 'O' request payload for one job.
func AppendObserveRequest(dst []byte, files []trace.FileID) []byte {
	dst = append(dst, KindObserve)
	return trace.AppendFileRuns(dst, files)
}

// AppendBatchRequest appends a 'B' request payload for a batch of jobs.
func AppendBatchRequest(dst []byte, jobs [][]trace.FileID) []byte {
	dst = append(dst, KindObserveBatch)
	dst = binary.AppendUvarint(dst, uint64(len(jobs)))
	for _, files := range jobs {
		dst = trace.AppendFileRuns(dst, files)
	}
	return dst
}

// AppendAdviseRequest appends an 'A' request payload.
func AppendAdviseRequest(dst []byte, req cache.AdviceRequest) []byte {
	dst = append(dst, KindAdvise)
	dst = binary.AppendUvarint(dst, uint64(req.Capacity))
	dst = trace.AppendFileRuns(dst, req.Files)
	dst = binary.AppendUvarint(dst, uint64(len(req.Resident)))
	for _, r := range req.Resident {
		dst = binary.AppendUvarint(dst, uint64(r.Unit))
		dst = binary.AppendVarint(dst, r.LastAccess)
	}
	return dst
}

// AppendPartitionRequest appends a 'P' request payload.
func AppendPartitionRequest(dst []byte) []byte {
	return append(dst, KindPartition)
}

// AppendSummaryRequest appends an 'S' request payload.
func AppendSummaryRequest(dst []byte) []byte {
	return append(dst, KindSummary)
}

// AppendFileculeRequest appends an 'F' per-file filecule lookup payload.
func AppendFileculeRequest(dst []byte, f trace.FileID) []byte {
	dst = append(dst, KindFilecule)
	return binary.AppendUvarint(dst, uint64(f))
}

// --- response encoders (server side) ---

func appendObserveResult(dst []byte, observed int64, filecules int) []byte {
	dst = append(dst, KindObserveResult)
	dst = binary.AppendUvarint(dst, uint64(observed))
	return binary.AppendUvarint(dst, uint64(filecules))
}

func appendAdviceResult(dst []byte, adv *cache.Advice) []byte {
	dst = append(dst, KindAdviceResult)
	dst = binary.AppendUvarint(dst, uint64(len(adv.Hits)))
	for _, u := range adv.Hits {
		dst = binary.AppendUvarint(dst, uint64(u))
	}
	dst = binary.AppendUvarint(dst, uint64(len(adv.Load)))
	for i := range adv.Load {
		lu := &adv.Load[i]
		dst = binary.AppendUvarint(dst, uint64(lu.Unit))
		dst = binary.AppendUvarint(dst, uint64(lu.Bytes))
		dst = trace.AppendFileRuns(dst, lu.Files)
	}
	dst = binary.AppendUvarint(dst, uint64(len(adv.Evict)))
	for _, u := range adv.Evict {
		dst = binary.AppendUvarint(dst, uint64(u))
	}
	dst = trace.AppendFileRuns(dst, adv.Bypassed)
	dst = binary.AppendUvarint(dst, uint64(adv.BytesToLoad))
	return binary.AppendUvarint(dst, uint64(adv.BytesToEvict))
}

// appendPartitionResult encodes a snapshot in canonical order. sizes is the
// per-filecule byte table (nil without a catalog; zeros are encoded so the
// layout is position-independent).
func appendPartitionResult(dst []byte, fcs []fcView, observed int64) []byte {
	dst = append(dst, KindPartitionResult)
	dst = binary.AppendUvarint(dst, uint64(observed))
	dst = binary.AppendUvarint(dst, uint64(len(fcs)))
	for i := range fcs {
		dst = binary.AppendUvarint(dst, uint64(fcs[i].requests))
		dst = binary.AppendUvarint(dst, uint64(fcs[i].bytes))
		dst = trace.AppendFileRuns(dst, fcs[i].files)
	}
	return dst
}

// fcView is one filecule row handed to the partition encoder.
type fcView struct {
	files    []trace.FileID
	requests int
	bytes    int64
}

// appendSummaryResult encodes an 's' response. The mean travels as its
// exact IEEE-754 bits so a client re-encoding it (e.g. the differential
// test's JSON round trip) reproduces the HTTP surface byte for byte.
func appendSummaryResult(dst []byte, r *SummaryReply) []byte {
	dst = append(dst, KindSummaryResult)
	dst = binary.AppendUvarint(dst, uint64(r.Observed))
	dst = binary.AppendUvarint(dst, uint64(r.Filecules))
	dst = binary.AppendUvarint(dst, uint64(r.Files))
	dst = binary.AppendUvarint(dst, uint64(r.Monatomic))
	dst = trace.AppendUint64(dst, math.Float64bits(r.MeanFilesPerGroup))
	dst = binary.AppendUvarint(dst, uint64(r.LargestFiles))
	return binary.AppendUvarint(dst, uint64(r.CoveredBytes))
}

// appendFileculeResult encodes an 'f' response for one filecule.
func appendFileculeResult(dst []byte, id, requests int, bytes int64, files []trace.FileID) []byte {
	dst = append(dst, KindFileculeResult)
	dst = binary.AppendUvarint(dst, uint64(id))
	dst = binary.AppendUvarint(dst, uint64(requests))
	dst = binary.AppendUvarint(dst, uint64(bytes))
	return trace.AppendFileRuns(dst, files)
}

func appendError(dst []byte, code int, msg string) []byte {
	dst = append(dst, KindError)
	dst = binary.AppendUvarint(dst, uint64(code))
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// --- reply types and decoders (client side) ---

// ObserveReply mirrors the JSON ObserveResult: total jobs observed and the
// current filecule count after the request was applied.
type ObserveReply struct {
	Observed  int64
	Filecules int
}

// AdviceReply mirrors cache.Advice.
type AdviceReply struct {
	Hits         []cache.UnitID
	Load         []LoadReply
	Evict        []cache.UnitID
	Bypassed     []trace.FileID
	BytesToLoad  int64
	BytesToEvict int64
}

// LoadReply is one unit to fetch.
type LoadReply struct {
	Unit  cache.UnitID
	Files []trace.FileID
	Bytes int64
}

// PartitionReply is the decoded 'p' response.
type PartitionReply struct {
	Observed  int64
	Filecules []FeculeReply
}

// FeculeReply is one filecule row; its ID is its index in the reply.
type FeculeReply struct {
	Files    []trace.FileID
	Requests int
	Bytes    int64
}

// SummaryReply mirrors the JSON SummaryBody: partition shape statistics.
type SummaryReply struct {
	Observed          int64
	Filecules         int
	Files             int
	Monatomic         int
	MeanFilesPerGroup float64
	LargestFiles      int
	CoveredBytes      int64
}

// FileculeLookupReply is the decoded 'f' response: the filecule containing
// one looked-up file, with its canonical ID.
type FileculeLookupReply struct {
	ID       int
	Files    []trace.FileID
	Requests int
	Bytes    int64
}

// RemoteError is an 'e' response surfaced to the client caller. The
// connection stays usable after a RemoteError (per-request failure); every
// other receive error poisons the client.
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
}

func decodeObserveReply(pl *trace.Payload) (ObserveReply, error) {
	var r ObserveReply
	r.Observed = int64(pl.Uvarint())
	r.Filecules = int(pl.Uvarint())
	return r, replyErr(pl, "observe")
}

func decodeAdviceReply(pl *trace.Payload) (*AdviceReply, error) {
	r := &AdviceReply{}
	for n := pl.Count("hit"); n > 0 && pl.Err() == nil; n-- {
		r.Hits = append(r.Hits, cache.UnitID(pl.Uvarint()))
	}
	for n := pl.Count("load unit"); n > 0 && pl.Err() == nil; n-- {
		lu := LoadReply{Unit: cache.UnitID(pl.Uvarint()), Bytes: int64(pl.Uvarint())}
		lu.Files = pl.FileRuns(nil, maxAnyFileID, DefaultMaxJobFiles)
		r.Load = append(r.Load, lu)
	}
	for n := pl.Count("evict"); n > 0 && pl.Err() == nil; n-- {
		r.Evict = append(r.Evict, cache.UnitID(pl.Uvarint()))
	}
	r.Bypassed = pl.FileRuns(nil, maxAnyFileID, DefaultMaxJobFiles)
	r.BytesToLoad = int64(pl.Uvarint())
	r.BytesToEvict = int64(pl.Uvarint())
	return r, replyErr(pl, "advice")
}

func decodePartitionReply(pl *trace.Payload) (*PartitionReply, error) {
	r := &PartitionReply{Observed: int64(pl.Uvarint())}
	n := pl.Count("filecule")
	for i := 0; i < n && pl.Err() == nil; i++ {
		fc := FeculeReply{Requests: int(pl.Uvarint()), Bytes: int64(pl.Uvarint())}
		fc.Files = pl.FileRuns(nil, maxAnyFileID, maxAnyFileID)
		r.Filecules = append(r.Filecules, fc)
	}
	return r, replyErr(pl, "partition")
}

func decodeSummaryReply(pl *trace.Payload) (SummaryReply, error) {
	var r SummaryReply
	r.Observed = int64(pl.Uvarint())
	r.Filecules = int(pl.Uvarint())
	r.Files = int(pl.Uvarint())
	r.Monatomic = int(pl.Uvarint())
	r.MeanFilesPerGroup = math.Float64frombits(pl.Uint64())
	r.LargestFiles = int(pl.Uvarint())
	r.CoveredBytes = int64(pl.Uvarint())
	return r, replyErr(pl, "summary")
}

func decodeFileculeReply(pl *trace.Payload) (*FileculeLookupReply, error) {
	r := &FileculeLookupReply{
		ID:       int(pl.Uvarint()),
		Requests: int(pl.Uvarint()),
		Bytes:    int64(pl.Uvarint()),
	}
	r.Files = pl.FileRuns(nil, maxAnyFileID, maxAnyFileID)
	return r, replyErr(pl, "filecule")
}

func decodeError(pl *trace.Payload) error {
	code := int(pl.Uvarint())
	n := pl.Count("message byte")
	msg := pl.Bytes(n)
	if err := replyErr(pl, "error"); err != nil {
		return err
	}
	return &RemoteError{Code: code, Msg: string(msg)}
}

// replyErr finalizes a response decode: a sticky cursor error or trailing
// bytes both mean the stream is not speaking filecule-wire/v1.
func replyErr(pl *trace.Payload, what string) error {
	if err := pl.Err(); err != nil {
		return fmt.Errorf("wire: bad %s reply: %w", what, err)
	}
	if pl.Remaining() != 0 {
		return fmt.Errorf("wire: bad %s reply: %d trailing bytes", what, pl.Remaining())
	}
	return nil
}
