package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"filecule/internal/cache"
	"filecule/internal/trace"
)

// fuzzStream builds one valid post-magic request stream, the shape seeds
// mutate from.
func fuzzStream(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	for _, p := range payloads {
		_ = trace.WriteChunk(&buf, p)
	}
	return buf.Bytes()
}

// FuzzWireProto feeds arbitrary post-magic connection bytes through the full
// decode→handle→encode path. The contract under fuzzing: never panic, answer
// every complete frame, name the byte offset when framing breaks, and emit
// only well-formed response frames that the client-side decoders accept.
func FuzzWireProto(f *testing.F) {
	f.Add(fuzzStream(AppendObserveRequest(nil, []trace.FileID{0, 1, 2})))
	f.Add(fuzzStream(
		AppendObserveRequest(nil, []trace.FileID{0, 1, 2}),
		AppendObserveRequest(nil, []trace.FileID{2, 1, 0, 2}),
		AppendPartitionRequest(nil)))
	f.Add(fuzzStream(AppendBatchRequest(nil, [][]trace.FileID{{0, 1}, {5, 6, 7}, {}})))
	f.Add(fuzzStream(AppendAdviseRequest(nil, cache.AdviceRequest{
		Capacity: 1000,
		Files:    []trace.FileID{0, 1, 2, 9},
		Resident: []cache.ResidentUnit{{Unit: 0, LastAccess: 3}, {Unit: 1 << 33, LastAccess: -1}},
	})))
	f.Add(fuzzStream(
		AppendObserveRequest(nil, []trace.FileID{0, 1, 2}),
		AppendSummaryRequest(nil),
		AppendFileculeRequest(nil, 1),
		AppendFileculeRequest(nil, 15))) // 15: observed in no job -> 404
	f.Add(fuzzStream([]byte{KindObserve, 0xff, 0xff}))                  // malformed payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})                         // broken framing
	f.Add(fuzzStream(AppendObserveRequest(nil, []trace.FileID{3}))[:3]) // truncated frame

	f.Fuzz(func(t *testing.T, in []byte) {
		s := &Server{Backend: newMemBackend(16, 10), MaxFiles: 16, MaxBatchJobs: 64}
		var out bytes.Buffer
		err := s.serveStream(&connState{},
			bufio.NewReader(bytes.NewReader(in)), bufio.NewWriter(&out), nil)
		if err != nil && !strings.Contains(err.Error(), "byte offset") {
			t.Fatalf("framing error does not name the byte offset: %v", err)
		}

		// Every response frame must decode cleanly with the client decoders.
		cr := trace.NewChunkReader(bytes.NewReader(out.Bytes()))
		for {
			kind, payload, rerr := cr.ReadChunk()
			if rerr != nil {
				break
			}
			pl := trace.NewPayload(payload)
			var derr error
			switch kind {
			case KindObserveResult:
				_, derr = decodeObserveReply(pl)
			case KindAdviceResult:
				_, derr = decodeAdviceReply(pl)
			case KindPartitionResult:
				_, derr = decodePartitionReply(pl)
			case KindSummaryResult:
				_, derr = decodeSummaryReply(pl)
			case KindFileculeResult:
				_, derr = decodeFileculeReply(pl)
			case KindError:
				e := decodeError(pl)
				if _, ok := e.(*RemoteError); !ok {
					derr = e
				}
			default:
				t.Fatalf("server emitted unknown response kind %q", kind)
			}
			if derr != nil {
				t.Fatalf("server emitted undecodable %q response: %v", kind, derr)
			}
		}
	})
}
