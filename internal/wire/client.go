package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"filecule/internal/cache"
	"filecule/internal/trace"
)

// Client is a filecule-wire/v1 connection. The Send*/Flush/Recv* primitives
// expose the protocol's FIFO pipelining directly: write any number of
// requests, flush once, then read the replies in order. The Observe/Batch/
// Advise/Partition wrappers do one synchronous round trip each.
//
// A Client is not safe for concurrent use; open one per goroutine (the
// protocol is cheap enough that connections need not be shared).
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	cr      *trace.ChunkReader
	pending []byte // request kinds awaiting replies, FIFO
	timeout time.Duration
	out     []byte // pooled request encode buffer
	err     error  // sticky: set once the stream is unusable
}

// Dial connects to a wire server and sends the protocol magic. timeout
// bounds each synchronous receive (and the dial itself); <= 0 means 30s.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn, timeout)
	if _, err := c.bw.WriteString(Magic); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (magic not yet sent — Dial sends
// it; tests using net.Pipe-like transports must write it themselves or use
// Dial).
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	return &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		cr:      trace.NewChunkReader(bufio.NewReaderSize(conn, 64<<10)),
		timeout: timeout,
	}
}

// Close closes the connection. Outstanding pipelined replies are abandoned.
func (c *Client) Close() error {
	c.poison(fmt.Errorf("wire: client closed"))
	return c.conn.Close()
}

func (c *Client) poison(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *Client) send(payload []byte, wantReply byte) error {
	if c.err != nil {
		return c.err
	}
	if err := trace.WriteChunk(c.bw, payload); err != nil {
		c.poison(err)
		return err
	}
	c.pending = append(c.pending, wantReply)
	return nil
}

// SendObserve pipelines an 'O' request. Pair with RecvObserve.
func (c *Client) SendObserve(files []trace.FileID) error {
	c.out = AppendObserveRequest(c.out[:0], files)
	return c.send(c.out, KindObserveResult)
}

// SendBatch pipelines a 'B' request. Pair with RecvObserve.
func (c *Client) SendBatch(jobs [][]trace.FileID) error {
	c.out = AppendBatchRequest(c.out[:0], jobs)
	return c.send(c.out, KindObserveResult)
}

// SendAdvise pipelines an 'A' request. Pair with RecvAdvice.
func (c *Client) SendAdvise(req cache.AdviceRequest) error {
	c.out = AppendAdviseRequest(c.out[:0], req)
	return c.send(c.out, KindAdviceResult)
}

// SendPartition pipelines a 'P' request. Pair with RecvPartition.
func (c *Client) SendPartition() error {
	c.out = AppendPartitionRequest(c.out[:0])
	return c.send(c.out, KindPartitionResult)
}

// SendSummary pipelines an 'S' request. Pair with RecvSummary.
func (c *Client) SendSummary() error {
	c.out = AppendSummaryRequest(c.out[:0])
	return c.send(c.out, KindSummaryResult)
}

// SendFilecule pipelines an 'F' lookup. Pair with RecvFilecule.
func (c *Client) SendFilecule(f trace.FileID) error {
	c.out = AppendFileculeRequest(c.out[:0], f)
	return c.send(c.out, KindFileculeResult)
}

// Flush writes all pipelined requests to the connection.
func (c *Client) Flush() error {
	if c.err != nil {
		return c.err
	}
	if err := c.bw.Flush(); err != nil {
		c.poison(err)
		return err
	}
	return nil
}

// recvFrame reads the next response frame and checks it answers the oldest
// pipelined request. An 'e' frame is returned as *RemoteError with the
// connection still usable; framing or ordering failures poison the client.
func (c *Client) recvFrame(want byte) (*trace.Payload, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(c.pending) == 0 || c.pending[0] != want {
		err := fmt.Errorf("wire: receive out of order: no pipelined request awaits kind %q", want)
		c.poison(err)
		return nil, err
	}
	c.pending = c.pending[:copy(c.pending, c.pending[1:])]
	if c.timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
	kind, payload, err := c.cr.ReadChunk()
	if err != nil {
		c.poison(fmt.Errorf("wire: read reply: %w", err))
		return nil, c.err
	}
	pl := trace.NewPayload(payload)
	if kind == KindError {
		err := decodeError(pl)
		if _, remote := err.(*RemoteError); !remote {
			c.poison(err)
		}
		return nil, err
	}
	if kind != want {
		err := fmt.Errorf("wire: reply kind %q, want %q", kind, want)
		c.poison(err)
		return nil, err
	}
	return pl, nil
}

// RecvObserve reads the reply to the oldest pipelined observe or batch.
func (c *Client) RecvObserve() (ObserveReply, error) {
	pl, err := c.recvFrame(KindObserveResult)
	if err != nil {
		return ObserveReply{}, err
	}
	r, err := decodeObserveReply(pl)
	if err != nil {
		c.poison(err)
	}
	return r, err
}

// RecvAdvice reads the reply to the oldest pipelined advise.
func (c *Client) RecvAdvice() (*AdviceReply, error) {
	pl, err := c.recvFrame(KindAdviceResult)
	if err != nil {
		return nil, err
	}
	r, err := decodeAdviceReply(pl)
	if err != nil {
		c.poison(err)
		return nil, err
	}
	return r, nil
}

// RecvPartition reads the reply to the oldest pipelined partition request.
func (c *Client) RecvPartition() (*PartitionReply, error) {
	pl, err := c.recvFrame(KindPartitionResult)
	if err != nil {
		return nil, err
	}
	r, err := decodePartitionReply(pl)
	if err != nil {
		c.poison(err)
		return nil, err
	}
	return r, nil
}

// RecvSummary reads the reply to the oldest pipelined summary request.
func (c *Client) RecvSummary() (SummaryReply, error) {
	pl, err := c.recvFrame(KindSummaryResult)
	if err != nil {
		return SummaryReply{}, err
	}
	r, err := decodeSummaryReply(pl)
	if err != nil {
		c.poison(err)
	}
	return r, err
}

// RecvFilecule reads the reply to the oldest pipelined filecule lookup. A
// file observed in no job comes back as a *RemoteError with code 404, the
// connection still usable.
func (c *Client) RecvFilecule() (*FileculeLookupReply, error) {
	pl, err := c.recvFrame(KindFileculeResult)
	if err != nil {
		return nil, err
	}
	r, err := decodeFileculeReply(pl)
	if err != nil {
		c.poison(err)
		return nil, err
	}
	return r, nil
}

// Observe does one synchronous observe round trip.
func (c *Client) Observe(files []trace.FileID) (ObserveReply, error) {
	if err := c.SendObserve(files); err != nil {
		return ObserveReply{}, err
	}
	if err := c.Flush(); err != nil {
		return ObserveReply{}, err
	}
	return c.RecvObserve()
}

// Batch does one synchronous batch round trip.
func (c *Client) Batch(jobs [][]trace.FileID) (ObserveReply, error) {
	if err := c.SendBatch(jobs); err != nil {
		return ObserveReply{}, err
	}
	if err := c.Flush(); err != nil {
		return ObserveReply{}, err
	}
	return c.RecvObserve()
}

// Advise does one synchronous advise round trip.
func (c *Client) Advise(req cache.AdviceRequest) (*AdviceReply, error) {
	if err := c.SendAdvise(req); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.RecvAdvice()
}

// Partition does one synchronous partition round trip.
func (c *Client) Partition() (*PartitionReply, error) {
	if err := c.SendPartition(); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.RecvPartition()
}

// Summary does one synchronous summary round trip.
func (c *Client) Summary() (SummaryReply, error) {
	if err := c.SendSummary(); err != nil {
		return SummaryReply{}, err
	}
	if err := c.Flush(); err != nil {
		return SummaryReply{}, err
	}
	return c.RecvSummary()
}

// Filecule does one synchronous per-file lookup round trip.
func (c *Client) Filecule(f trace.FileID) (*FileculeLookupReply, error) {
	if err := c.SendFilecule(f); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.RecvFilecule()
}

// Pending returns the number of pipelined requests awaiting replies.
func (c *Client) Pending() int { return len(c.pending) }
