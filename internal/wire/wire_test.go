package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"filecule/internal/cache"
	"filecule/internal/core"
	"filecule/internal/trace"
)

// memBackend is a self-contained Backend over a monitor and a fixed catalog,
// mirroring the adapter internal/server builds over its own stack.
type memBackend struct {
	mon *core.Monitor
	cat *trace.Trace // nil disables advice and byte sizing

	mu      sync.Mutex
	granFor *core.Partition
	gran    cache.Granularity

	observeErr error // injected failure for the 500 path
}

func newMemBackend(nFiles int, size int64) *memBackend {
	files := make([]trace.File, nFiles)
	for i := range files {
		files[i] = trace.File{ID: trace.FileID(i), Name: fmt.Sprintf("f%d", i), Size: size}
	}
	return &memBackend{mon: core.NewMonitor(), cat: &trace.Trace{Files: files}}
}

func (b *memBackend) Observe(files []trace.FileID) error {
	if b.observeErr != nil {
		return b.observeErr
	}
	b.mon.Observe(files)
	return nil
}

func (b *memBackend) ObserveBatch(jobs [][]trace.FileID) error {
	if b.observeErr != nil {
		return b.observeErr
	}
	b.mon.ObserveBatch(jobs)
	return nil
}

func (b *memBackend) Counts() (int64, int) {
	return b.mon.Observed(), b.mon.NumFilecules()
}

func (b *memBackend) Granularity() (cache.Granularity, error) {
	if b.cat == nil {
		return nil, fmt.Errorf("no catalog")
	}
	p := b.mon.Snapshot()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.granFor != p {
		b.gran = cache.NewFileculeGranularity(b.cat, p)
		b.granFor = p
	}
	return b.gran, nil
}

func (b *memBackend) PartitionState() (*core.Partition, int64, *trace.Trace) {
	return b.mon.Snapshot(), b.mon.Observed(), b.cat
}

// runStream feeds raw post-magic request bytes through serveStream and
// returns the raw response bytes and the stream error.
func runStream(t *testing.T, s *Server, in []byte) ([]byte, error) {
	t.Helper()
	var out bytes.Buffer
	err := s.serveStream(&connState{},
		bufio.NewReader(bytes.NewReader(in)), bufio.NewWriter(&out), nil)
	return out.Bytes(), err
}

// frames splits raw response bytes into decoded (kind, payload) frames.
func frames(t *testing.T, raw []byte) (kinds []byte, payloads [][]byte) {
	t.Helper()
	cr := trace.NewChunkReader(bytes.NewReader(raw))
	for {
		kind, payload, err := cr.ReadChunk()
		if err != nil {
			return kinds, payloads
		}
		kinds = append(kinds, kind)
		payloads = append(payloads, append([]byte(nil), payload...))
	}
}

func chunk(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteChunk(&buf, payload); err != nil {
		t.Fatalf("WriteChunk: %v", err)
	}
	return buf.Bytes()
}

func TestObserveRoundTrip(t *testing.T) {
	s := &Server{Backend: newMemBackend(10, 100)}
	var in []byte
	in = append(in, chunk(t, AppendObserveRequest(nil, []trace.FileID{0, 1, 2}))...)
	in = append(in, chunk(t, AppendObserveRequest(nil, []trace.FileID{0, 1, 2}))...)
	in = append(in, chunk(t, AppendObserveRequest(nil, []trace.FileID{0, 5}))...)
	raw, err := runStream(t, s, in)
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 3 {
		t.Fatalf("got %d frames, want 3", len(kinds))
	}
	wants := []ObserveReply{
		{Observed: 1, Filecules: 1},
		{Observed: 2, Filecules: 1},
		{Observed: 3, Filecules: 3}, // {0}, {1,2}, {5}
	}
	for i, k := range kinds {
		if k != KindObserveResult {
			t.Fatalf("frame %d kind %q, want 'o'", i, k)
		}
		got, err := decodeObserveReply(trace.NewPayload(payloads[i]))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != wants[i] {
			t.Errorf("frame %d = %+v, want %+v", i, got, wants[i])
		}
	}
}

func TestBatchAndPartitionRoundTrip(t *testing.T) {
	b := newMemBackend(10, 100)
	s := &Server{Backend: b}
	var in []byte
	in = append(in, chunk(t, AppendBatchRequest(nil, [][]trace.FileID{
		{0, 1, 2}, {0, 1, 2}, {3},
	}))...)
	in = append(in, chunk(t, AppendPartitionRequest(nil))...)
	raw, err := runStream(t, s, in)
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 2 || kinds[0] != KindObserveResult || kinds[1] != KindPartitionResult {
		t.Fatalf("frames = %q, want \"op\"", kinds)
	}
	or, err := decodeObserveReply(trace.NewPayload(payloads[0]))
	if err != nil || or.Observed != 3 || or.Filecules != 2 {
		t.Fatalf("observe reply %+v err %v, want 3 observed 2 filecules", or, err)
	}
	pr, err := decodePartitionReply(trace.NewPayload(payloads[1]))
	if err != nil {
		t.Fatalf("partition reply: %v", err)
	}
	if pr.Observed != 3 || len(pr.Filecules) != 2 {
		t.Fatalf("partition = %+v, want observed 3, 2 filecules", pr)
	}
	// Canonical order: {0,1,2} then {3}; catalog sizes 100/file.
	fc0, fc1 := pr.Filecules[0], pr.Filecules[1]
	if len(fc0.Files) != 3 || fc0.Requests != 2 || fc0.Bytes != 300 {
		t.Errorf("filecule 0 = %+v, want 3 files, 2 requests, 300 bytes", fc0)
	}
	if len(fc1.Files) != 1 || fc1.Requests != 1 || fc1.Bytes != 100 {
		t.Errorf("filecule 1 = %+v, want 1 file, 1 request, 100 bytes", fc1)
	}
}

func TestAdviseMatchesDirectPlanner(t *testing.T) {
	b := newMemBackend(8, 50)
	s := &Server{Backend: b}
	b.mon.ObserveBatch([][]trace.FileID{{0, 1}, {0, 1}, {2, 3}})

	req := cache.AdviceRequest{
		Capacity: 150,
		Files:    []trace.FileID{0, 1, 2},
		Resident: []cache.ResidentUnit{{Unit: 1, LastAccess: 5}},
	}
	var in []byte
	in = append(in, chunk(t, AppendAdviseRequest(nil, req))...)
	raw, err := runStream(t, s, in)
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindAdviceResult {
		t.Fatalf("frames = %q, want \"a\"", kinds)
	}
	got, err := decodeAdviceReply(trace.NewPayload(payloads[0]))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	g, err := b.Granularity()
	if err != nil {
		t.Fatalf("granularity: %v", err)
	}
	want, err := cache.Advise(g, req)
	if err != nil {
		t.Fatalf("direct advise: %v", err)
	}
	if len(got.Hits) != len(want.Hits) || len(got.Load) != len(want.Load) ||
		len(got.Evict) != len(want.Evict) || len(got.Bypassed) != len(want.Bypassed) ||
		got.BytesToLoad != want.BytesToLoad || got.BytesToEvict != want.BytesToEvict {
		t.Fatalf("wire advice %+v != direct advice %+v", got, want)
	}
	for i := range want.Load {
		if got.Load[i].Unit != want.Load[i].Unit || got.Load[i].Bytes != want.Load[i].Bytes {
			t.Errorf("load[%d] = %+v, want %+v", i, got.Load[i], want.Load[i])
		}
	}
}

func TestMalformedPayloadKeepsConnection(t *testing.T) {
	s := &Server{Backend: newMemBackend(4, 10)}
	var in []byte
	in = append(in, chunk(t, []byte{KindObserve, 0xff})...) // truncated varint
	in = append(in, chunk(t, AppendObserveRequest(nil, []trace.FileID{1}))...)
	raw, err := runStream(t, s, in)
	if err != nil {
		t.Fatalf("serveStream: %v (payload errors must not kill the stream)", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 2 || kinds[0] != KindError || kinds[1] != KindObserveResult {
		t.Fatalf("frames = %q, want \"eo\"", kinds)
	}
	rerr := decodeError(trace.NewPayload(payloads[0]))
	re, ok := rerr.(*RemoteError)
	if !ok {
		t.Fatalf("decodeError = %v, want *RemoteError", rerr)
	}
	if re.Code != CodeBadRequest || !strings.Contains(re.Msg, "byte offset") {
		t.Errorf("error = %+v, want 400 naming the byte offset", re)
	}
}

func TestFileIDOutOfCatalogRejected(t *testing.T) {
	s := &Server{Backend: newMemBackend(4, 10), MaxFiles: 4}
	raw, err := runStream(t, s, chunk(t, AppendObserveRequest(nil, []trace.FileID{7})))
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindError {
		t.Fatalf("frames = %q, want \"e\"", kinds)
	}
	re := decodeError(trace.NewPayload(payloads[0])).(*RemoteError)
	if re.Code != CodeBadRequest {
		t.Errorf("code = %d, want 400", re.Code)
	}
	if got, _ := s.Backend.Counts(); got != 0 {
		t.Errorf("observed = %d after rejected job, want 0", got)
	}
}

func TestBrokenFramingClosesWithFinalError(t *testing.T) {
	s := &Server{Backend: newMemBackend(4, 10)}
	good := chunk(t, AppendObserveRequest(nil, []trace.FileID{1}))
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xff // flip a CRC byte
	in := append(append([]byte(nil), good...), corrupt...)
	raw, err := runStream(t, s, in)
	if err == nil {
		t.Fatal("serveStream returned nil on corrupt framing, want error")
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 2 || kinds[0] != KindObserveResult || kinds[1] != KindError {
		t.Fatalf("frames = %q, want \"oe\"", kinds)
	}
	re := decodeError(trace.NewPayload(payloads[1])).(*RemoteError)
	if !strings.Contains(re.Msg, "byte offset") {
		t.Errorf("final error %q does not name the byte offset", re.Msg)
	}
}

func TestBatchOverLimitRejected(t *testing.T) {
	s := &Server{Backend: newMemBackend(4, 10), MaxBatchJobs: 2}
	jobs := [][]trace.FileID{{0}, {1}, {2}}
	raw, err := runStream(t, s, chunk(t, AppendBatchRequest(nil, jobs)))
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindError {
		t.Fatalf("frames = %q, want \"e\"", kinds)
	}
	re := decodeError(trace.NewPayload(payloads[0])).(*RemoteError)
	if re.Code != CodeBadRequest || !strings.Contains(re.Msg, "exceeds limit 2") {
		t.Errorf("error = %+v, want batch-limit rejection", re)
	}
}

// TestBatchTotalExpansionCapped pins the batch-wide decode budget: the
// per-job cap alone would let run-length encoding expand a tiny 'B' frame
// to jobs × jobFiles IDs, so the total across all jobs must also be capped.
func TestBatchTotalExpansionCapped(t *testing.T) {
	s := &Server{Backend: newMemBackend(64, 10), MaxBatchFiles: 10}

	// 12 total files over three jobs: exceeds the batch cap even though
	// each job is well under the per-job cap.
	over := [][]trace.FileID{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}, {10, 11}}
	raw, err := runStream(t, s, chunk(t, AppendBatchRequest(nil, over)))
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindError {
		t.Fatalf("frames = %q, want \"e\"", kinds)
	}
	re := decodeError(trace.NewPayload(payloads[0])).(*RemoteError)
	if re.Code != CodeBadRequest {
		t.Errorf("code = %d, want 400", re.Code)
	}
	if got, _ := s.Backend.Counts(); got != 0 {
		t.Errorf("observed = %d after rejected batch, want 0", got)
	}

	// Exactly at the cap is fine.
	at := [][]trace.FileID{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	raw, err = runStream(t, s, chunk(t, AppendBatchRequest(nil, at)))
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, _ = frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindObserveResult {
		t.Fatalf("frames = %q, want \"o\" for a batch at the cap", kinds)
	}
}

// TestBatchAmplificationFrameRejected replays the review's attack shape: a
// frame whose run-length encoding is a few bytes per job but whose decoded
// form would be jobs × maxJobFiles IDs. It must be answered 400 without the
// server materializing more than the batch budget.
func TestBatchAmplificationFrameRejected(t *testing.T) {
	s := &Server{Backend: newMemBackend(0, 10), MaxJobFiles: 1 << 10, MaxBatchFiles: 1 << 12}
	jobs := 100
	payload := []byte{KindObserveBatch}
	payload = binary.AppendUvarint(payload, uint64(jobs))
	for i := 0; i < jobs; i++ {
		payload = binary.AppendUvarint(payload, 1)             // one run
		payload = binary.AppendVarint(payload, 0)              // start delta 0
		payload = binary.AppendUvarint(payload, uint64(1<<10)) // max-length run
	}
	raw, err := runStream(t, s, chunk(t, payload))
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindError {
		t.Fatalf("frames = %q, want \"e\"", kinds)
	}
	re := decodeError(trace.NewPayload(payloads[0])).(*RemoteError)
	if re.Code != CodeBadRequest || !strings.Contains(re.Msg, "byte offset") {
		t.Errorf("error = %+v, want 400 naming the byte offset", re)
	}
	if got, _ := s.Backend.Counts(); got != 0 {
		t.Errorf("observed = %d after rejected batch, want 0", got)
	}
}

func TestUnknownKindRejected(t *testing.T) {
	s := &Server{Backend: newMemBackend(4, 10)}
	raw, err := runStream(t, s, chunk(t, []byte{'Z'}))
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, _ := frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindError {
		t.Fatalf("frames = %q, want \"e\"", kinds)
	}
}

// TestObserveHandleAllocs pins the zero-allocation contract of the hot
// observe path: once a connection's pools are warm and the engine has seen
// the job shape, handling an 'O' frame allocates nothing.
func TestObserveHandleAllocs(t *testing.T) {
	s := &Server{Backend: newMemBackend(64, 10)}
	payload := AppendObserveRequest(nil, []trace.FileID{3, 4, 5, 6, 7})
	st := &connState{}
	// Warm: first calls grow pools and create the engine's blocks.
	for i := 0; i < 3; i++ {
		s.handle(st, payload[0], payload, 0)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, code := s.handle(st, payload[0], payload, 0); code != 200 {
			t.Fatalf("handle code %d", code)
		}
	})
	if avg != 0 {
		t.Errorf("observe handle allocates %.1f objects/op, want 0", avg)
	}
}

func TestClientServerOverTCP(t *testing.T) {
	b := newMemBackend(16, 25)
	s := &Server{Backend: b, MaxFiles: 16}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	c, err := Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Pipelined burst: N observes, one flush, N receives in order.
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.SendObserve([]trace.FileID{0, 1, trace.FileID(i % 16)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < n; i++ {
		r, err := c.RecvObserve()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if r.Observed != int64(i+1) {
			t.Fatalf("reply %d observed = %d, want %d (FIFO order broken)", i, r.Observed, i+1)
		}
	}

	// A RemoteError (bad file ID) must not poison the connection.
	if _, err := c.Observe([]trace.FileID{99}); err == nil {
		t.Fatal("observe of out-of-catalog file succeeded, want RemoteError")
	} else if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	r, err := c.Observe([]trace.FileID{2})
	if err != nil {
		t.Fatalf("observe after RemoteError: %v", err)
	}
	if r.Observed != n+1 {
		t.Errorf("observed = %d, want %d", r.Observed, n+1)
	}

	// Sync advise and partition round trips.
	adv, err := c.Advise(cache.AdviceRequest{Capacity: 100, Files: []trace.FileID{0, 1}})
	if err != nil {
		t.Fatalf("advise: %v", err)
	}
	if len(adv.Load) == 0 || adv.BytesToLoad == 0 {
		t.Errorf("advice = %+v, want a load plan", adv)
	}
	p, err := c.Partition()
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if p.Observed != n+1 || len(p.Filecules) == 0 {
		t.Errorf("partition = observed %d with %d filecules, want %d observed", p.Observed, len(p.Filecules), n+1)
	}
}

func TestBadMagicAnswersError(t *testing.T) {
	s := &Server{Backend: newMemBackend(4, 10)}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	defer func() { cancel(); <-done }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	cr := trace.NewChunkReader(conn)
	kind, payload, err := cr.ReadChunk()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if kind != KindError {
		t.Fatalf("kind = %q, want 'e'", kind)
	}
	re := decodeError(trace.NewPayload(payload)).(*RemoteError)
	if re.Code != CodeBadRequest || !strings.Contains(re.Msg, "magic") {
		t.Errorf("error = %+v, want bad-magic 400", re)
	}
}

// lateConnListener returns one connection only after the listener has been
// Closed, reproducing the shutdown race where Accept wins against ctx
// cancellation and the connection would otherwise register after the closer
// goroutine has already swept the map.
type lateConnListener struct {
	conn   net.Conn
	closed chan struct{}
	once   sync.Once
	served bool
}

func (l *lateConnListener) Accept() (net.Conn, error) {
	if l.served {
		return nil, net.ErrClosed
	}
	l.served = true
	<-l.closed
	// Give the shutdown goroutine time to finish sweeping the (empty)
	// connection map before handing over the late connection.
	time.Sleep(20 * time.Millisecond)
	return l.conn, nil
}

func (l *lateConnListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *lateConnListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestShutdownClosesConnAcceptedDuringCancel pins that a connection accepted
// concurrently with ctx cancellation is closed immediately rather than left
// to time out against the idle deadline (which would stall Serve's wg.Wait
// for up to that long).
func TestShutdownClosesConnAcceptedDuringCancel(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	l := &lateConnListener{conn: server, closed: make(chan struct{})}
	s := &Server{Backend: newMemBackend(4, 10)} // default 120s idle timeout
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel; late-accepted conn leaked past the shutdown sweep")
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Error("read on the late-accepted conn succeeded, want closed")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Error("late-accepted conn still open after shutdown (read timed out)")
	}
}

// TestAdviceReplyDecodeStopsOnStickyError pins that every count-driven reply
// loop stops at the first decode error rather than appending junk entries up
// to the claimed count (a hostile reply could otherwise drive hundreds of MB
// of allocation from one max-size frame).
func TestAdviceReplyDecodeStopsOnStickyError(t *testing.T) {
	junk := bytes.Repeat([]byte{0x80}, 40) // never-terminating varint
	t.Run("hits", func(t *testing.T) {
		var pl []byte
		pl = binary.AppendUvarint(pl, 40)
		pl = append(pl, junk...)
		r, err := decodeAdviceReply(trace.NewPayload(pl))
		if err == nil {
			t.Fatal("decode of malformed reply succeeded")
		}
		if len(r.Hits) > 1 {
			t.Errorf("decode appended %d hits after the error, want <= 1", len(r.Hits))
		}
	})
	t.Run("evict", func(t *testing.T) {
		var pl []byte
		pl = binary.AppendUvarint(pl, 0) // no hits
		pl = binary.AppendUvarint(pl, 0) // no load units
		pl = binary.AppendUvarint(pl, 40)
		pl = append(pl, junk...)
		r, err := decodeAdviceReply(trace.NewPayload(pl))
		if err == nil {
			t.Fatal("decode of malformed reply succeeded")
		}
		if len(r.Evict) > 1 {
			t.Errorf("decode appended %d evicts after the error, want <= 1", len(r.Evict))
		}
	})
}

func TestObserveBackendErrorAnswers500(t *testing.T) {
	b := newMemBackend(4, 10)
	b.observeErr = fmt.Errorf("disk full")
	s := &Server{Backend: b}
	raw, err := runStream(t, s, chunk(t, AppendObserveRequest(nil, []trace.FileID{0})))
	if err != nil {
		t.Fatalf("serveStream: %v", err)
	}
	kinds, payloads := frames(t, raw)
	if len(kinds) != 1 || kinds[0] != KindError {
		t.Fatalf("frames = %q, want \"e\"", kinds)
	}
	re := decodeError(trace.NewPayload(payloads[0])).(*RemoteError)
	if re.Code != CodeInternal || !strings.Contains(re.Msg, "disk full") {
		t.Errorf("error = %+v, want 500 carrying the cause", re)
	}
}
