// Exit-code contract tests for the command-line tools: usage errors exit 2
// (the flag package convention), operational failures exit 1, success exits
// 0. A tool that prints an error but exits 0 silently breaks scripts and CI
// pipelines, so the contract is pinned here for every command.
package filecule_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles every command once into a shared temp dir and returns
// the binary paths by command name.
func buildCmds(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	return -1, ""
}

func TestCommandExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every command; skipped in -short mode")
	}
	bins := buildCmds(t,
		"filecule-cachesim", "filecule-gen", "filecule-analyze",
		"filecule-repro", "filecule-swarm", "filecule-serve")

	noSuchTrace := filepath.Join(t.TempDir(), "missing.trace")
	unwritable := filepath.Join(t.TempDir(), "no-such-dir", "out.trace")
	tiny := []string{"-scale", "0.001", "-seed", "1"}

	cases := []struct {
		name string
		bin  string
		args []string
		want int
	}{
		// Usage errors: the flag package's conventional exit 2.
		{"bad flag", "filecule-cachesim", []string{"-no-such-flag"}, 2},
		{"bad flag gen", "filecule-gen", []string{"-no-such-flag"}, 2},

		// Operational failures: exit 1.
		{"missing trace", "filecule-cachesim", []string{"-trace", noSuchTrace}, 1},
		{"unknown policy", "filecule-cachesim", append([]string{"-policy", "belady"}, tiny...), 1},
		{"bad sweep policy", "filecule-cachesim", append([]string{"-sweep", "-policies", "mru"}, tiny...), 1},
		{"bad sweep gran", "filecule-cachesim", append([]string{"-sweep", "-grans", "block"}, tiny...), 1},
		{"bad sweep size", "filecule-cachesim", append([]string{"-sizes", "zero"}, tiny...), 1},
		{"sweep unwritable output", "filecule-cachesim", append([]string{"-sweep", "-o", unwritable}, tiny...), 1},
		{"gen unwritable output", "filecule-gen", append([]string{"-o", unwritable}, tiny...), 1},
		{"analyze missing trace", "filecule-analyze", []string{"-trace", noSuchTrace}, 1},
		{"analyze unknown experiment", "filecule-analyze", append([]string{"-exp", "fig99"}, tiny...), 1},
		{"repro unknown experiment", "filecule-repro", append([]string{"-exp", "fig99"}, tiny...), 1},
		{"swarm missing trace", "filecule-swarm", []string{"-trace", noSuchTrace}, 1},
		{"serve missing trace", "filecule-serve", []string{"-trace", noSuchTrace}, 1},
		{"serve unbindable wire addr", "filecule-serve",
			append([]string{"-selftest", "-wire-addr", "256.256.256.256:1"}, tiny...), 1},
		{"serve wire addr with durable selftest", "filecule-serve",
			append([]string{"-selftest", "-wire-addr", "127.0.0.1:0", "-state-dir", t.TempDir()}, tiny...), 1},

		// Success: exit 0.
		{"serve wire selftest ok", "filecule-serve",
			append([]string{"-selftest", "-wire-addr", "127.0.0.1:0"}, tiny...), 0},
		{"gen ok", "filecule-gen", append([]string{"-o", filepath.Join(t.TempDir(), "t.trace")}, tiny...), 0},
		{"sweep ok", "filecule-cachesim",
			append([]string{"-sweep", "-policies", "lru", "-grans", "file", "-sizes", "1"}, tiny...), 0},
		{"repro list ok", "filecule-repro", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, out := exitCode(t, bins[tc.bin], tc.args...)
			if got != tc.want {
				t.Errorf("%s %v: exit %d, want %d\noutput:\n%s", tc.bin, tc.args, got, tc.want, out)
			}
		})
	}
	// Successful trace generation must produce a loadable trace.
	okTrace := filepath.Join(t.TempDir(), "ok.trace")
	if got, out := exitCode(t, bins["filecule-gen"], "-o", okTrace, "-scale", "0.001"); got != 0 {
		t.Fatalf("gen: exit %d\n%s", got, out)
	}
	if fi, err := os.Stat(okTrace); err != nil || fi.Size() == 0 {
		t.Fatalf("gen produced no trace: %v", err)
	}
}

// TestWorkloadSpecExitCodes pins the -workload spec contract across the
// tools: malformed specs are operational failures (exit 1) with descriptive
// errors, "-workload help" prints the adapter listing, and every adapter
// drives the tools to success.
func TestWorkloadSpecExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds commands; skipped in -short mode")
	}
	bins := buildCmds(t, "filecule-gen", "filecule-cachesim", "filecule-analyze")

	dir := t.TempDir()
	kvCSV := filepath.Join(dir, "kv.csv")
	if got, out := exitCode(t, bins["filecule-gen"],
		"-kv-csv", "400", "-kv-keys", "50", "-seed", "3", "-o", kvCSV); got != 0 {
		t.Fatalf("gen -kv-csv: exit %d\n%s", got, out)
	}

	sweepArgs := []string{"-sweep", "-policies", "lru", "-grans", "file", "-sizes", "1"}
	cases := []struct {
		name    string
		bin     string
		args    []string
		want    int
		wantSub string
	}{
		// Malformed specs: operational failures with descriptive errors.
		{"unknown adapter", "filecule-cachesim",
			append([]string{"-workload", "klingon"}, sweepArgs...), 1, "unknown adapter"},
		{"unknown option", "filecule-cachesim",
			append([]string{"-workload", "dzero,warp=9"}, sweepArgs...), 1, "unknown option"},
		{"bad option value", "filecule-cachesim",
			append([]string{"-workload", "dzero,seed=banana"}, sweepArgs...), 1, "seed"},
		{"missing key=value", "filecule-analyze",
			[]string{"-workload", "dzero,seed", "-exp", "table1"}, 1, "not key=value"},
		{"duplicate option", "filecule-analyze",
			[]string{"-workload", "dzero,seed=1,seed=2", "-exp", "table1"}, 1, "given twice"},
		{"kv-csv missing path", "filecule-cachesim",
			append([]string{"-workload", "kv-csv"}, sweepArgs...), 1, "path"},
		{"spec conflicts with -trace", "filecule-cachesim",
			append([]string{"-workload", "dzero,seed=1", "-trace", kvCSV}, sweepArgs...), 1, "conflicts"},
		{"gen bad spec", "filecule-gen",
			[]string{"-workload", "xrootd,one-touch=2", "-o", filepath.Join(dir, "x.trace")}, 1, "one-touch"},

		// -workload help prints the adapter listing (exit 1: nothing ran).
		{"workload help", "filecule-cachesim",
			append([]string{"-workload", "help"}, sweepArgs...), 1, "kv-csv"},

		// Every adapter drives the tools to success.
		{"sweep dzero spec", "filecule-cachesim",
			append([]string{"-workload", "dzero,seed=1,scale=0.001"}, sweepArgs...), 0, ""},
		{"sweep xrootd spec", "filecule-cachesim",
			append([]string{"-workload", "xrootd,seed=1,scale=0.002"}, sweepArgs...), 0, ""},
		{"sweep kv-csv spec", "filecule-cachesim",
			append([]string{"-workload", "kv-csv,path=" + kvCSV + ",window=8"}, sweepArgs...), 0, ""},
		{"sweep shaped spec", "filecule-cachesim",
			append([]string{"-workload", "dzero,seed=1,scale=0.001,shape=burst,rps-start=5,rps-target=50,slot=30s"}, sweepArgs...), 0, ""},
		{"analyze kv-csv spec", "filecule-analyze",
			[]string{"-workload", "kv-csv,path=" + kvCSV, "-exp", "table1"}, 0, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, out := exitCode(t, bins[tc.bin], tc.args...)
			if got != tc.want {
				t.Errorf("%s %v: exit %d, want %d\noutput:\n%s", tc.bin, tc.args, got, tc.want, out)
			}
			if tc.wantSub != "" && !strings.Contains(out, tc.wantSub) {
				t.Errorf("%s %v: output missing %q:\n%s", tc.bin, tc.args, tc.wantSub, out)
			}
		})
	}
}

// TestDurableExitCodes pins the crash-safety flag contract of
// filecule-serve: durability misconfiguration and unrecoverable state both
// exit 1 before serving a single request, and corruption errors name the
// failing chunk's byte offset; a state directory left by a clean run
// recovers and passes the selftest.
func TestDurableExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds filecule-serve and runs selftests; skipped in -short mode")
	}
	bins := buildCmds(t, "filecule-serve", "filecule-state")
	serve := bins["filecule-serve"]
	state := bins["filecule-state"]
	tiny := []string{"-scale", "0.001", "-seed", "1"}

	// filecule-state usage contract: missing or unknown subcommands and a
	// missing -dir are usage errors; a nonexistent directory is operational.
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"state no subcommand", nil, 2},
		{"state unknown subcommand", []string{"restore"}, 2},
		{"state dump without dir", []string{"dump"}, 2},
		{"state dump missing dir", []string{"dump", "-dir", filepath.Join(t.TempDir(), "nope")}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got, out := exitCode(t, state, tc.args...); got != tc.want {
				t.Errorf("exit %d, want %d\noutput:\n%s", got, tc.want, out)
			}
		})
	}

	// Flag contract: checkpointing without a state directory, an
	// unparseable sync cadence, and an uncreatable state directory are all
	// operational failures.
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"checkpoint-interval without state-dir", []string{"-checkpoint-interval", "1s"}},
		{"bad wal-sync", append([]string{"-selftest", "-state-dir", t.TempDir(), "-wal-sync", "sometimes"}, tiny...)},
		{"unwritable state dir", append([]string{"-selftest", "-state-dir", "/dev/null/state"}, tiny...)},
		{"peers without site", []string{"-peers", "http://127.0.0.1:1"}},
		{"wal-segment-bytes without state-dir", []string{"-wal-segment-bytes", "1048576"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got, out := exitCode(t, serve, tc.args...); got != 1 {
				t.Errorf("exit %d, want 1\noutput:\n%s", got, out)
			}
		})
	}

	// A durable selftest initializes the state directory, restarts from it
	// mid-trace, and must pass.
	stateDir := filepath.Join(t.TempDir(), "state")
	if got, out := exitCode(t, serve,
		append([]string{"-selftest", "-state-dir", stateDir, "-wal-sync", "commit"}, tiny...)...); got != 0 {
		t.Fatalf("durable selftest: exit %d\n%s", got, out)
	}

	// A clean state directory dumps with exit 0 and shows the epoch chain.
	if got, out := exitCode(t, state, "dump", "-dir", stateDir); got != 0 {
		t.Errorf("dump of clean state dir: exit %d\n%s", got, out)
	} else if !strings.Contains(out, "checkpoint-") || !strings.Contains(out, "wal-") {
		t.Errorf("dump output missing the epoch chain:\n%s", out)
	}
	if got, out := exitCode(t, state, "dump", "-dir", stateDir, "-groups"); got != 0 || !strings.Contains(out, "group ") {
		t.Errorf("dump -groups: exit %d, per-group lines missing\n%s", got, out)
	}

	// Corrupt every checkpoint and remove the WALs: startup must refuse to
	// serve and say where the corruption is.
	ents, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, ent := range ents {
		path := filepath.Join(stateDir, ent.Name())
		if strings.HasPrefix(ent.Name(), "wal-") {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x20
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("selftest left no checkpoint files to corrupt")
	}
	got, out := exitCode(t, serve, append([]string{"-selftest", "-state-dir", stateDir}, tiny...)...)
	if got != 1 {
		t.Errorf("corrupt state: exit %d, want 1\noutput:\n%s", got, out)
	}
	if !strings.Contains(out, "byte offset") {
		t.Errorf("corruption error does not name the byte offset:\n%s", out)
	}

	// The dump subcommand must agree: exit 1 and name the byte offset.
	got, out = exitCode(t, state, "dump", "-dir", stateDir)
	if got != 1 {
		t.Errorf("dump of corrupt state dir: exit %d, want 1\noutput:\n%s", got, out)
	}
	if !strings.Contains(out, "byte offset") {
		t.Errorf("dump corruption finding does not name the byte offset:\n%s", out)
	}
}

// TestFormatFlagExitCodes pins the -format / -convert / -stream contract:
// binary traces round through the tools, asserted formats are enforced, and
// corrupt binary input fails loudly.
func TestFormatFlagExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds commands; skipped in -short mode")
	}
	bins := buildCmds(t, "filecule-gen", "filecule-cachesim", "filecule-analyze")

	dir := t.TempDir()
	textTrace := filepath.Join(dir, "t.trace")
	binTrace := filepath.Join(dir, "t.bin")
	tiny := []string{"-scale", "0.001", "-seed", "1"}

	if got, out := exitCode(t, bins["filecule-gen"], append([]string{"-o", textTrace}, tiny...)...); got != 0 {
		t.Fatalf("gen text: exit %d\n%s", got, out)
	}
	if got, out := exitCode(t, bins["filecule-gen"],
		"-convert", textTrace, "-format", "bin", "-o", binTrace); got != 0 {
		t.Fatalf("gen convert: exit %d\n%s", got, out)
	}
	binBytes, err := os.ReadFile(binTrace)
	if err != nil || len(binBytes) == 0 {
		t.Fatalf("conversion produced no binary trace: %v", err)
	}
	txt, err := os.ReadFile(textTrace)
	if err != nil {
		t.Fatal(err)
	}
	if len(binBytes) >= len(txt) {
		t.Errorf("binary trace (%d bytes) not smaller than text (%d bytes)", len(binBytes), len(txt))
	}

	// A streamed binary generation must also load.
	streamBin := filepath.Join(dir, "stream.bin")
	if got, out := exitCode(t, bins["filecule-gen"],
		append([]string{"-stream", "-format", "bin", "-o", streamBin}, tiny...)...); got != 0 {
		t.Fatalf("gen -stream: exit %d\n%s", got, out)
	}

	// Corrupt binary: flip a byte in the middle so a chunk CRC fails.
	corrupt := filepath.Join(dir, "corrupt.bin")
	cb := append([]byte(nil), binBytes...)
	cb[len(cb)/2] ^= 0x40
	if err := os.WriteFile(corrupt, cb, 0o644); err != nil {
		t.Fatal(err)
	}

	sweepArgs := []string{"-sweep", "-policies", "lru", "-grans", "file", "-sizes", "1", "-scale", "0.001"}
	cases := []struct {
		name string
		bin  string
		args []string
		want int
	}{
		{"sweep reads bin", "filecule-cachesim", append([]string{"-trace", binTrace}, sweepArgs...), 0},
		{"sweep reads streamed bin", "filecule-cachesim", append([]string{"-trace", streamBin}, sweepArgs...), 0},
		{"sweep rejects corrupt bin", "filecule-cachesim", append([]string{"-trace", corrupt}, sweepArgs...), 1},
		{"cachesim format mismatch", "filecule-cachesim",
			append([]string{"-trace", textTrace, "-format", "bin"}, sweepArgs...), 1},
		{"cachesim bad format", "filecule-cachesim",
			append([]string{"-trace", binTrace, "-format", "xml"}, sweepArgs...), 1},
		{"gen bad format", "filecule-gen", []string{"-format", "xml", "-scale", "0.001"}, 1},
		{"gen convert missing input", "filecule-gen",
			[]string{"-convert", filepath.Join(dir, "missing.trace"), "-o", filepath.Join(dir, "x.bin")}, 1},
		{"analyze format mismatch", "filecule-analyze",
			[]string{"-trace", binTrace, "-format", "text", "-exp", "table1"}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got, out := exitCode(t, bins[tc.bin], tc.args...)
			if got != tc.want {
				t.Errorf("%s %v: exit %d, want %d\noutput:\n%s", tc.bin, tc.args, got, tc.want, out)
			}
		})
	}
}
