// Benchmarks that regenerate every table and figure of the paper (one
// Benchmark per artifact, backed by internal/experiments), plus
// micro-benchmarks of the core algorithms. Run with:
//
//	go test -bench=. -benchmem
//
// The per-artifact benches share one workload at bench scale; the first
// bench to run pays the generation cost via the shared runner (excluded
// from its own timings by b.ResetTimer).
package filecule_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"filecule/internal/cache"
	"filecule/internal/core"
	"filecule/internal/durable"
	"filecule/internal/experiments"
	"filecule/internal/server"
	"filecule/internal/sim"
	"filecule/internal/stats"
	"filecule/internal/synth"
	"filecule/internal/trace"
	"filecule/internal/wire"
	"filecule/internal/workload"
)

// benchScale keeps the full `go test -bench=.` run under a couple of
// minutes while exercising every experiment end to end.
const benchScale = 0.02

var benchRunner = experiments.New(experiments.Config{Seed: 1, Scale: benchScale})

// benchCapacity is the 10 TB (full-scale) cache point scaled to the bench
// workload.
func benchCapacity() int64 {
	scale := benchScale // shed constant-ness; the product is fractional
	return int64(10 * scale * (1 << 40))
}

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// Materialize the shared workload and partition outside the timing.
	benchRunner.Trace()
	benchRunner.Partition()
	benchRunner.Requests()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := benchRunner.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("no output")
		}
	}
}

func BenchmarkTable1(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)             { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)             { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)             { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)             { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)             { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)             { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)            { benchExperiment(b, "fig12") }
func BenchmarkSwarmFeasibility(b *testing.B) { benchExperiment(b, "swarm") }
func BenchmarkPartialKnowledge(b *testing.B) { benchExperiment(b, "partial") }
func BenchmarkReplication(b *testing.B)      { benchExperiment(b, "replication") }
func BenchmarkPolicyAblation(b *testing.B)   { benchExperiment(b, "ablation") }
func BenchmarkDynamics(b *testing.B)         { benchExperiment(b, "dynamics") }
func BenchmarkPrefetchers(b *testing.B)      { benchExperiment(b, "prefetchers") }
func BenchmarkFileBundle(b *testing.B)       { benchExperiment(b, "filebundle") }
func BenchmarkReplicationSweep(b *testing.B) { benchExperiment(b, "replsweep") }
func BenchmarkChunkSwarm(b *testing.B)       { benchExperiment(b, "chunkswarm") }
func BenchmarkPlacement(b *testing.B)        { benchExperiment(b, "placement") }

// --- micro-benchmarks of the building blocks ---

func BenchmarkGenerateWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := synth.Generate(synth.DZero(int64(i), 0.01))
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Jobs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkIdentifyBatch(b *testing.B) {
	t := benchRunner.Trace()
	b.ReportMetric(float64(t.NumRequests()), "requests")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.Identify(t)
		if p.NumFilecules() == 0 {
			b.Fatal("no filecules")
		}
	}
}

func BenchmarkIdentifyParallel(b *testing.B) {
	t := benchRunner.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.IdentifyParallel(t, 0)
		if p.NumFilecules() == 0 {
			b.Fatal("no filecules")
		}
	}
}

func BenchmarkIdentifyOnline(b *testing.B) {
	t := benchRunner.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.NewRefiner()
		r.ObserveTrace(t)
		if r.NumFilecules() == 0 {
			b.Fatal("no filecules")
		}
	}
}

func BenchmarkCacheReplayFileLRU(b *testing.B) {
	t := benchRunner.Trace()
	reqs := benchRunner.Requests()
	capacity := benchCapacity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := cache.NewSim(t, cache.NewFileGranularity(t), cache.NewLRU(), capacity).Replay(reqs)
		if m.Requests == 0 {
			b.Fatal("no requests")
		}
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkCacheReplayFileculeLRU(b *testing.B) {
	t := benchRunner.Trace()
	p := benchRunner.Partition()
	reqs := benchRunner.Requests()
	capacity := benchCapacity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := cache.NewSim(t, cache.NewFileculeGranularity(t, p), cache.NewLRU(), capacity).Replay(reqs)
		if m.Requests == 0 {
			b.Fatal("no requests")
		}
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkCacheReplayOPT(b *testing.B) {
	t := benchRunner.Trace()
	reqs := benchRunner.Requests()
	capacity := benchCapacity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := cache.SimulateOPT(t, cache.NewFileGranularity(t), capacity, reqs)
		if m.Requests == 0 {
			b.Fatal("no requests")
		}
	}
}

func BenchmarkRequestStream(b *testing.B) {
	t := benchRunner.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(t.Requests()) == 0 {
			b.Fatal("no requests")
		}
	}
}

func BenchmarkTraceCodec(b *testing.B) {
	t := benchRunner.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := trace.Write(&buf, t); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf))
	}
}

type writeCounter int

func (w *writeCounter) Write(p []byte) (int, error) {
	*w += writeCounter(len(p))
	return len(p), nil
}

// benchDecode measures one full decode of the benchmark trace in the given
// codec. The two benchmarks share an encoded buffer shape, so the benchgate
// DecodeBin/DecodeText pair measures pure codec speed on identical content.
func benchDecode(b *testing.B, encode func(io.Writer, *trace.Trace) error,
	decode func(io.Reader) (*trace.Trace, error)) {
	b.Helper()
	t := benchRunner.Trace()
	var buf bytes.Buffer
	if err := encode(&buf, t); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeText measures full-trace parsing of the v1 text codec.
func BenchmarkDecodeText(b *testing.B) { benchDecode(b, trace.Write, trace.Read) }

// BenchmarkDecodeBin measures the parallel chunk decode of filecule-bin/v1.
// The benchgate enforces a floor on DecodeBin/DecodeText (bin must stay at
// least 2x faster than text on the same trace).
func BenchmarkDecodeBin(b *testing.B) { benchDecode(b, trace.WriteBin, trace.ReadBin) }

// benchBinFile writes the bench trace as filecule-bin/v1 to a temp file and
// returns its path and size. Shared by the mmap decode/iterate benches.
func benchBinFile(b *testing.B) (string, int64) {
	b.Helper()
	t := benchRunner.Trace()
	path := filepath.Join(b.TempDir(), "bench.bin")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := trace.WriteBin(f, t); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	return path, fi.Size()
}

// BenchmarkDecodeMmap measures the zero-copy mapped decode of the same
// filecule-bin/v1 content from a real file (page cache warm after the first
// iteration): chunk index walk, lazy CRC verification, and the parallel
// decode reading columns straight off the mapping. The benchgate enforces a
// floor on DecodeBin/DecodeMmap — mapping must stay faster than streaming
// the identical bytes through the buffered chunk reader.
func BenchmarkDecodeMmap(b *testing.B) {
	path, size := benchBinFile(b)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFileSink keeps the compiler from eliding the per-job file-list decode
// in BenchmarkMapIterate.
var benchFileSink int64

// BenchmarkMapIterate measures steady-state per-job iteration over a mapped
// trace — the sweep/replay access pattern. One iteration is one job; the
// cursor restarts when the trace is exhausted, so chunk-decode costs are
// amortized exactly as a sweep amortizes them. The benchgate bounds
// allocs/op: the mapped hot loop must stay allocation-free outside chunk
// boundaries.
func BenchmarkMapIterate(b *testing.B) {
	path, _ := benchBinFile(b)
	m, err := trace.OpenMapping(path)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	src := m.Source()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := src.Next()
		if err == io.EOF {
			src.Close()
			src = m.Source()
			j, err = src.Next()
		}
		if err != nil {
			b.Fatal(err)
		}
		benchFileSink += int64(len(j.Files))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkDecodeKV measures steady-state row decode of the KV-cache CSV
// adapter (op classification, size parsing, field splitting) over an
// in-memory Meta-style trace. One iteration is one row; the reader restarts
// when the CSV is exhausted, amortizing setup exactly as the two-pass open
// amortizes it. The benchgate bounds allocs/op: the row decode path must
// stay allocation-free.
func BenchmarkDecodeKV(b *testing.B) {
	var csv bytes.Buffer
	if err := workload.GenKVCSV(&csv, 1, 5000, 200_000); err != nil {
		b.Fatal(err)
	}
	data := csv.Bytes()
	kr, err := workload.NewKVReader(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	var row workload.KVRow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := kr.Next(&row)
		if err == io.EOF {
			if kr, err = workload.NewKVReader(bytes.NewReader(data)); err == nil {
				err = kr.Next(&row)
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		benchFileSink += row.Size
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// --- cache-grid sweep engine (internal/sim) ---

// benchSweepGrid runs one full policy × granularity × capacity grid per
// iteration through the given engine, reporting aggregate simulated
// cell-requests per second (one cell-request = one request replayed into one
// grid cell).
func benchSweepGrid(b *testing.B, scale float64,
	engine func(*trace.Trace, *core.Partition, []trace.Request, sim.SweepConfig) (*sim.SweepResult, error)) {
	b.Helper()
	r := experiments.New(experiments.Config{Seed: 1, Scale: scale})
	t := r.Trace()
	p := r.Partition()
	reqs := r.Requests()
	cfg := sim.SweepConfig{Scale: scale}
	cells := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine(t, p, reqs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) == 0 || res.Cells[0].Metrics.Requests == 0 {
			b.Fatal("empty sweep")
		}
		cells = len(res.Cells)
	}
	b.ReportMetric(float64(len(reqs))*float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cellreq/s")
}

// BenchmarkSweepEngine is the single-pass dense engine over the full grid at
// bench scale — one of the two numbers behind the CI speedup gate.
func BenchmarkSweepEngine(b *testing.B) { benchSweepGrid(b, benchScale, sim.Sweep) }

// BenchmarkSweepSequential is the same grid replayed one cell at a time
// through the cache package — the reference cost the engine is compared to.
func BenchmarkSweepSequential(b *testing.B) { benchSweepGrid(b, benchScale, sim.SweepSequential) }

// The Large pair reproduces the headline comparison on a ~100k-job trace
// (scale 0.4). Excluded from the default CI bench pattern; run explicitly:
//
//	go test -bench='SweepEngineLarge|SweepSequentialLarge' -benchtime=1x
func BenchmarkSweepEngineLarge(b *testing.B)     { benchSweepGrid(b, 0.4, sim.Sweep) }
func BenchmarkSweepSequentialLarge(b *testing.B) { benchSweepGrid(b, 0.4, sim.SweepSequential) }

// --- online identification engines (internal/core Engine vs Refiner) ---

// The Observe pair measures steady-state single-job ingestion: the
// identifier has already seen the whole trace, and iterations cycle through
// the same job stream — the regime a long-running service settles into,
// where re-requests dominate. The Refiner pays its per-observe slice scans
// and map churn here; the engine's dense dup check is O(files in job) with
// zero steady-state allocations. ObserveEngineParallel/ObserveRefiner is
// the speedup pair behind the CI bench gate.

func BenchmarkObserveRefiner(b *testing.B) {
	t := benchRunner.Trace()
	r := core.NewRefiner()
	r.ObserveTrace(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(t.Jobs[i%len(t.Jobs)].Files)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

func BenchmarkObserveEngine(b *testing.B) {
	t := benchRunner.Trace()
	e := core.NewEngine(0)
	e.ObserveTrace(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(t.Jobs[i%len(t.Jobs)].Files)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkObserveEngineParallel drives the shared engine from GOMAXPROCS
// goroutines — lock-striped shards let observes over disjoint files
// proceed concurrently, so this also exercises the contention path.
func BenchmarkObserveEngineParallel(b *testing.B) {
	t := benchRunner.Trace()
	e := core.NewEngine(0)
	e.ObserveTrace(t)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % len(t.Jobs)
			e.Observe(t.Jobs[i].Files)
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkObserveEngineBatch amortizes the snapshot-invalidation and gate
// acquisition over 100-job batches, the shape /v1/jobs/batch produces.
func BenchmarkObserveEngineBatch(b *testing.B) {
	t := benchRunner.Trace()
	e := core.NewEngine(0)
	e.ObserveTrace(t)
	const batch = 100
	var batches [][][]trace.FileID
	for lo := 0; lo+batch <= len(t.Jobs); lo += batch {
		jobs := make([][]trace.FileID, 0, batch)
		for _, j := range t.Jobs[lo : lo+batch] {
			jobs = append(jobs, j.Files)
		}
		batches = append(batches, jobs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ObserveBatch(batches[i%len(batches)])
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkObserveWAL is BenchmarkObserveEngine with the durability layer
// in front: each observe run-encodes its file list into the in-memory
// group-commit batch before touching the engine; the fsync happens on the
// committer goroutine's cadence, off the hot path. ObserveWAL over
// ObserveEngine is bounded by the benchgate's -wal-overhead-ceiling.
func BenchmarkObserveWAL(b *testing.B) {
	t := benchRunner.Trace()
	d, err := durable.Open(durable.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	d.Core().ObserveTrace(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Observe(t.Jobs[i%len(t.Jobs)].Files); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// The Snapshot pair measures the observe-then-snapshot cycle: one job in,
// one full partition out. The Refiner rebuilds its partition from scratch
// each call; the engine's copy-on-write snapshot only rebuilds filecules
// whose blocks the interleaved observe actually touched.

func BenchmarkSnapshotRefiner(b *testing.B) {
	t := benchRunner.Trace()
	r := core.NewRefiner()
	r.ObserveTrace(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(t.Jobs[i%len(t.Jobs)].Files)
		if r.Partition().NumFilecules() == 0 {
			b.Fatal("no filecules")
		}
	}
}

func BenchmarkSnapshotEngine(b *testing.B) {
	t := benchRunner.Trace()
	e := core.NewEngine(0)
	e.ObserveTrace(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(t.Jobs[i%len(t.Jobs)].Files)
		if e.Snapshot().NumFilecules() == 0 {
			b.Fatal("no filecules")
		}
	}
}

// --- serving hot path (internal/server handlers via httptest) ---

// BenchmarkServerObserve measures job ingestion through the full HTTP
// handler stack: JSON decode, validation, monitor refinement, metrics.
func BenchmarkServerObserve(b *testing.B) {
	t := benchRunner.Trace()
	s := server.New(server.Config{Catalog: t.Files})
	bodies := make([][]byte, len(t.Jobs))
	for i := range t.Jobs {
		body, err := json.Marshal(server.JobBody{Files: t.Jobs[i].Files})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := bodies[i%len(bodies)]
		r := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("observe: %d %s", w.Code, w.Body)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkServerObserveBatch measures the batched ingestion variant (one
// lock acquisition and one HTTP round trip per 100 jobs).
func BenchmarkServerObserveBatch(b *testing.B) {
	t := benchRunner.Trace()
	s := server.New(server.Config{Catalog: t.Files})
	const batch = 100
	var bodies [][]byte
	for lo := 0; lo+batch <= len(t.Jobs); lo += batch {
		var bb server.BatchBody
		for _, j := range t.Jobs[lo : lo+batch] {
			bb.Jobs = append(bb.Jobs, server.JobBody{Files: j.Files})
		}
		body, err := json.Marshal(bb)
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := bodies[i%len(bodies)]
		r := httptest.NewRequest("POST", "/v1/jobs/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("batch: %d %s", w.Code, w.Body)
		}
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkServerAdvise measures cache-advice queries against a settled
// partition — the read-mostly steady state where the snapshot and
// granularity caches should make queries cheap.
func BenchmarkServerAdvise(b *testing.B) {
	t := benchRunner.Trace()
	s := server.New(server.Config{Catalog: t.Files})
	for i := range t.Jobs {
		s.Monitor().Observe(t.Jobs[i].Files)
	}
	capacity := benchCapacity()
	bodies := make([][]byte, 0, 256)
	for i := 0; i < 256 && i < len(t.Jobs); i++ {
		j := &t.Jobs[i]
		if len(j.Files) == 0 {
			continue
		}
		body, err := json.Marshal(server.AdviseBody{
			CapacityBytes: capacity,
			Files:         j.Files,
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		b.Fatal("no advise bodies")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := bodies[i%len(bodies)]
		r := httptest.NewRequest("POST", "/v1/cache/advise", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("advise: %d %s", w.Code, w.Body)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerPartitionQuery measures snapshot-backed filecule lookups.
func BenchmarkServerPartitionQuery(b *testing.B) {
	t := benchRunner.Trace()
	s := server.New(server.Config{Catalog: t.Files})
	for i := range t.Jobs {
		s.Monitor().Observe(t.Jobs[i].Files)
	}
	p := s.Monitor().Snapshot()
	if p.NumFiles() == 0 {
		b.Fatal("empty partition")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Filecules[i%p.NumFilecules()].Files[0]
		r := httptest.NewRequest("GET", fmt.Sprintf("/v1/filecules/%d", f), nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("filecule: %d %s", w.Code, w.Body)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// --- wire protocol vs HTTP/JSON over real TCP ---

// benchTCPServer boots a server over a loopback listener with the bench
// trace's catalog, pre-warms the engine with the full trace (so both
// protocol benches measure a settled steady state), and returns the HTTP
// and wire addresses plus a shutdown func.
func benchTCPServer(b *testing.B) (httpAddr, wireAddr string, stop func()) {
	b.Helper()
	t := benchRunner.Trace()
	s := server.New(server.Config{Catalog: t.Files})
	jobs := make([][]trace.FileID, len(t.Jobs))
	for i := range t.Jobs {
		jobs[i] = t.Jobs[i].Files
	}
	s.Monitor().ObserveBatch(jobs)

	ctx, cancel := context.WithCancel(context.Background())
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 2)
	go func() { done <- s.Run(ctx, hl) }()
	go func() { done <- s.RunWire(ctx, wl) }()
	return hl.Addr().String(), wl.Addr().String(), func() {
		cancel()
		<-done
		<-done
	}
}

// BenchmarkServeTCPWire measures observe ingestion over the binary wire
// protocol on a real TCP connection with a 64-deep pipeline — the protocol's
// intended operating point. Reports req/s and the p99 round-trip latency
// (including in-burst queueing) in nanoseconds.
func BenchmarkServeTCPWire(b *testing.B) {
	t := benchRunner.Trace()
	_, wireAddr, stop := benchTCPServer(b)
	defer stop()
	c, err := wire.Dial(wireAddr, 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Observe(t.Jobs[0].Files); err != nil {
		b.Fatal(err)
	}

	window := 64
	if b.N < window {
		window = b.N
	}
	lat := make([]float64, 0, b.N)
	sendT := make([]time.Time, window)
	b.ResetTimer()
	for i := 0; i < b.N; {
		n := window
		if b.N-i < n {
			n = b.N - i
		}
		for k := 0; k < n; k++ {
			sendT[k] = time.Now()
			if err := c.SendObserve(t.Jobs[(i+k)%len(t.Jobs)].Files); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if _, err := c.RecvObserve(); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(sendT[k]).Seconds())
		}
		i += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(stats.Quantile(lat, 0.99)*1e9, "p99-ns")
}

// BenchmarkServeTCPJSON is the HTTP/JSON counterpart of
// BenchmarkServeTCPWire: the same observes against the same server build,
// one keep-alive POST /v1/jobs per request. The benchgate pins the wire
// protocol's speedup over this baseline.
func BenchmarkServeTCPJSON(b *testing.B) {
	t := benchRunner.Trace()
	httpAddr, _, stop := benchTCPServer(b)
	defer stop()
	hc := &http.Client{Timeout: 30 * time.Second}
	url := "http://" + httpAddr + "/v1/jobs"
	bodies := make([][]byte, len(t.Jobs))
	for i := range t.Jobs {
		body, err := json.Marshal(server.JobBody{Files: t.Jobs[i].Files})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}

	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		resp, err := hc.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("observe: HTTP %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(t0).Seconds())
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(stats.Quantile(lat, 0.99)*1e9, "p99-ns")
}
