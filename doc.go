// Package filecule is a reproduction of "Filecules in High-Energy Physics:
// Characteristics and Impact on Resource Management" (Iamnitchi, Doraimani,
// Garzoglio; HPDC 2006).
//
// A filecule is a maximal group of files that is always used together: the
// equivalence classes of files under "requested by exactly the same set of
// jobs". The paper shows that managing scientific data at filecule
// granularity — instead of the traditional single-file granularity —
// substantially improves caching (a 4-5x lower LRU miss rate at large cache
// sizes), and examines the consequences for replication, data transfer and
// BitTorrent-style distribution.
//
// The library lives under internal/:
//
//	internal/trace       workload model, codec, summaries
//	internal/synth       calibrated synthetic DZero workload generator
//	internal/core        filecule identification (batch, online, partial)
//	internal/cache       trace-driven cache simulator and policy zoo
//	internal/sim         discrete-event kernel
//	internal/grid        WAN/site substrate with fair-shared links
//	internal/swarm       access-interval analysis and swarm fluid model
//	internal/replica     proactive replication strategies
//	internal/stats       histograms, ECDF, Zipf fits
//	internal/dist        random distributions
//	internal/report      tables, bars, timelines
//	internal/experiments one driver per table/figure of the paper
//
// Entry points: cmd/filecule-repro (full reproduction report),
// cmd/filecule-gen, cmd/filecule-analyze, cmd/filecule-cachesim,
// cmd/filecule-swarm, and the runnable walkthroughs under examples/.
//
// The benchmarks in bench_test.go regenerate every table and figure; see
// EXPERIMENTS.md for paper-vs-measured numbers and DESIGN.md for the system
// inventory and the substitutions made for the proprietary DZero trace.
package filecule
