//go:build slow

// Kill-and-recover differential harness: SIGKILLs a live filecule-serve at
// randomized points — mid-replay, right after an admin checkpoint, during
// the 50ms background checkpoint cadence — then restarts it on the same
// state directory and checks three things against batch identification:
//
//  1. the recovered observed-count N satisfies acked <= N <= sent, so no
//     acknowledged observe is ever lost (-wal-sync commit) and nothing is
//     invented;
//  2. the recovered partition is byte-identical to core.Identify over the
//     first N jobs, for every crash point;
//  3. after several kill-recover cycles on one state directory, finishing
//     the trace converges to the identical partition an uninterrupted run
//     produces.
//
// The subprocess is built with -race so crash-window code paths run under
// the race detector. Run via `make kill-recover` (go test -race -tags slow
// -run TestKillAndRecover .).
package filecule_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"filecule/internal/cli"
	"filecule/internal/core"
	"filecule/internal/server"
	"filecule/internal/trace"
)

// buildServeRace compiles filecule-serve with the race detector enabled.
func buildServeRace(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "filecule-serve")
	out, err := exec.Command("go", "build", "-race", "-o", bin, "./cmd/filecule-serve").CombinedOutput()
	if err != nil {
		t.Fatalf("build -race filecule-serve: %v\n%s", err, out)
	}
	return bin
}

// serveProc is one run of the filecule-serve subprocess.
type serveProc struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
	waited bool
}

var listenRE = regexp.MustCompile(`listening on ([0-9.:]+)`)

// startServe launches the server on a loopback port with strict WAL commits
// and an aggressive background checkpoint cadence, and waits for the listen
// line.
func startServe(t *testing.T, bin, tracePath, stateDir string) *serveProc {
	t.Helper()
	return startServeArgs(t, bin,
		"-addr", "127.0.0.1:0", "-trace", tracePath, "-state-dir", stateDir,
		"-wal-sync", "commit", "-checkpoint-interval", "50ms", "-pprof=false")
}

// startServeArgs launches the serve binary with an arbitrary flag set and
// waits for its listen line.
func startServeArgs(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, stderr: &stderr}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		p.kill(t)
		t.Fatalf("server did not report a listen address\nstderr:\n%s", stderr.String())
	}
	return p
}

// kill SIGKILLs the subprocess (if still running), reaps it, and fails the
// test if the subprocess race detector fired.
func (p *serveProc) kill(t *testing.T) {
	t.Helper()
	if !p.waited {
		p.cmd.Process.Kill()
		p.cmd.Wait()
		p.waited = true
	}
	if strings.Contains(p.stderr.String(), "DATA RACE") {
		t.Fatalf("race detected in filecule-serve subprocess:\n%s", p.stderr.String())
	}
}

// get fetches a URL, failing on transport errors or non-200s.
func httpGet(t *testing.T, c *http.Client, url string) []byte {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

var observedRE = regexp.MustCompile(`filecule_jobs_observed_total (\d+)`)

// readObserved reads the recovered job count from the metrics endpoint.
func readObserved(t *testing.T, c *http.Client, base string) int {
	t.Helper()
	m := observedRE.FindSubmatch(httpGet(t, c, base+"/metrics"))
	if m == nil {
		t.Fatal("metrics output missing filecule_jobs_observed_total")
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// postJob submits one observe; false means the request failed (the expected
// outcome when the killer lands mid-replay).
func postJob(c *http.Client, base string, files []trace.FileID) bool {
	body, err := json.Marshal(struct {
		Files []trace.FileID `json:"files"`
	}{files})
	if err != nil {
		return false
	}
	resp, err := c.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// comparePartition asserts the served partition is byte-identical to batch
// identification over the first n jobs.
func comparePartition(t *testing.T, c *http.Client, base string, tr *trace.Trace, n int, label string) {
	t.Helper()
	prefix := &trace.Trace{Files: tr.Files, Jobs: tr.Jobs[:n]}
	want, err := server.PartitionJSON(core.Identify(prefix), int64(n), &trace.Trace{Files: tr.Files})
	if err != nil {
		t.Fatal(err)
	}
	got := httpGet(t, c, base+"/v1/partition")
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Fatalf("%s: partition after %d jobs differs from core.Identify (%d vs %d bytes)",
			label, n, len(got), len(want))
	}
}

func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly kills a subprocess; skipped in -short mode")
	}
	bin := buildServeRace(t)

	tr, err := cli.Workload{Seed: 7, Scale: 0.01}.Load()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.bin")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBin(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	stateDir := filepath.Join(dir, "state")

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("%d jobs, kill schedule seed %d", len(tr.Jobs), seed)

	client := &http.Client{Timeout: 30 * time.Second}
	lo, hi := 0, 0 // bounds on the durable observed count
	const cycles = 6
	for cycle := 0; cycle < cycles; cycle++ {
		p := startServe(t, bin, tracePath, stateDir)
		n := readObserved(t, client, p.base)
		if n < lo || n > hi {
			p.kill(t)
			t.Fatalf("cycle %d: recovered %d jobs, want between %d (acked) and %d (sent)\nstderr:\n%s",
				cycle, n, lo, hi, p.stderr.String())
		}
		comparePartition(t, client, p.base, tr, n, fmt.Sprintf("cycle %d recovery", cycle))
		next := n
		if next >= len(tr.Jobs) {
			p.kill(t)
			break
		}

		acked := 0
		if cycle%2 == 0 {
			// Kill lands asynchronously mid-replay (possibly mid-request,
			// possibly during a background checkpoint). At most one request
			// is in flight, so the durable count is acked or acked+1.
			delay := time.Duration(rng.Intn(400)+25) * time.Millisecond
			timer := time.AfterFunc(delay, func() { p.cmd.Process.Kill() })
			for i := next; i < len(tr.Jobs); i++ {
				if !postJob(client, p.base, tr.Jobs[i].Files) {
					break
				}
				acked++
			}
			timer.Stop()
			lo, hi = next+acked, next+acked+1
		} else {
			// Replay a burst, checkpoint through the admin endpoint, then
			// kill immediately: recovery must come back from the newly
			// written checkpoint with nothing in flight.
			burst := rng.Intn(300) + 1
			for i := next; i < len(tr.Jobs) && i < next+burst; i++ {
				if !postJob(client, p.base, tr.Jobs[i].Files) {
					t.Fatalf("cycle %d: observe %d failed with no kill pending\nstderr:\n%s",
						cycle, i, p.stderr.String())
				}
				acked++
			}
			resp, err := client.Post(p.base+"/v1/admin/checkpoint", "application/json", nil)
			if err == nil {
				resp.Body.Close()
			}
			lo, hi = next+acked, next+acked
		}
		if hi > len(tr.Jobs) {
			hi = len(tr.Jobs)
		}
		p.kill(t)
	}

	// Final pass: recover once more, finish the trace uninterrupted, and
	// check convergence to the uninterrupted-reference partition.
	p := startServe(t, bin, tracePath, stateDir)
	n := readObserved(t, client, p.base)
	if n < lo || n > hi {
		p.kill(t)
		t.Fatalf("final recovery: %d jobs, want between %d and %d", n, lo, hi)
	}
	comparePartition(t, client, p.base, tr, n, "final recovery")
	for i := n; i < len(tr.Jobs); i++ {
		if !postJob(client, p.base, tr.Jobs[i].Files) {
			t.Fatalf("final replay: observe %d failed\nstderr:\n%s", i, p.stderr.String())
		}
	}
	comparePartition(t, client, p.base, tr, len(tr.Jobs), "final")
	t.Logf("converged after %d kill-recover cycles: %d jobs, partition byte-identical to core.Identify", cycles, len(tr.Jobs))

	// Graceful shutdown must exit 0 and leave a state directory that
	// recovers to the identical full partition.
	p.cmd.Process.Signal(os.Interrupt)
	if err := p.cmd.Wait(); err != nil {
		p.waited = true
		t.Fatalf("graceful shutdown: %v\nstderr:\n%s", err, p.stderr.String())
	}
	p.waited = true
	p.kill(t) // race-detector check only

	p2 := startServe(t, bin, tracePath, stateDir)
	if got := readObserved(t, client, p2.base); got != len(tr.Jobs) {
		p2.kill(t)
		t.Fatalf("post-shutdown recovery: %d jobs, want %d", got, len(tr.Jobs))
	}
	comparePartition(t, client, p2.base, tr, len(tr.Jobs), "post-shutdown recovery")
	p2.kill(t)
}
