module filecule

go 1.22
